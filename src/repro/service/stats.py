"""Per-shard serving statistics for :mod:`repro.service`.

Each shard owns one :class:`ShardStats`: monotonic counters mirroring the
simulator's accounting (hits, misses, reuse admissions, evictions on both
the tag and data sides) plus a bounded latency reservoir from which p50/p99
are computed on demand.  Counters are plain ints mutated under the shard
lock through the ``record_*`` methods — :class:`ReuseStore` never pokes the
fields directly, so the obs registry's collectors (and the REP009 lint rule)
see one well-defined write path per statistic.

Latencies use **seeded reservoir sampling** (Vitter's Algorithm R): every
request has an equal probability of being retained, so the quantiles
estimate the whole run rather than just the most recent window, and the
seeded :class:`random.Random` keeps a replayed workload byte-for-byte
reproducible (no global RNG, per REP001).  ``reservoir_occupancy`` /
``reservoir_capacity`` in the snapshot expose how full the reservoir is;
``latency_samples`` counts every latency ever offered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


#: default number of latency samples retained per shard
LATENCY_WINDOW = 4096


def quantile(samples: list, q: float) -> float:
    """Linear-interpolated quantile of ``samples`` (``q`` in [0, 1])."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class ShardStats:
    """Counters and latency reservoir for one shard."""

    #: GETs served from the data store
    hits: int = 0
    #: GETs not served (tag-only or unknown key)
    misses: int = 0
    #: SETs admitted into the data store because the tag showed reuse
    reuse_admissions: int = 0
    #: SETs declined by the admission filter (key only tagged, no data stored)
    tag_only_sets: int = 0
    #: data-store entries evicted to make room (Clock victims)
    data_evictions: int = 0
    #: tag-directory entries evicted (NRR victims), i.e. reuse history lost
    tag_evictions: int = 0
    #: explicit DELs that removed a stored value
    deletes: int = 0
    #: bytes currently held by the data store
    bytes_stored: int = 0
    #: total bytes ever written into the data store
    bytes_written: int = 0
    #: summed request service time in seconds — the shard's *busy* time.
    #: Shards share one event loop, so per-shard CPU cannot be read from the
    #: OS; busy seconds are the serving-side analogue (request wall time
    #: attributed to the shard that owned the key).
    busy_s: float = 0.0
    #: retained request latencies in seconds (the reservoir)
    latencies: list = field(default_factory=list, repr=False)
    latency_window: int = LATENCY_WINDOW
    #: latencies ever offered to the reservoir (retained or not)
    latency_count: int = 0
    #: seed of the reservoir's private RNG (the shard's seed)
    seed: int = 0

    def __post_init__(self):
        self._rng = random.Random(self.seed)

    # -- recording (one method per statistic; see module docstring) ------------

    def record_latency(self, seconds: float) -> None:
        """Offer one request latency to the reservoir (Algorithm R).

        The first ``latency_window`` samples are always kept; afterwards
        sample *i* replaces a uniformly chosen slot with probability
        ``window / i``, giving every request the same retention probability.
        """
        self.latency_count += 1
        self.busy_s += seconds
        if len(self.latencies) < self.latency_window:
            self.latencies.append(seconds)
        else:
            slot = self._rng.randrange(self.latency_count)
            if slot < self.latency_window:
                self.latencies[slot] = seconds

    def record_hit(self) -> None:
        """A GET served from the data store."""
        self.hits += 1

    def record_miss(self) -> None:
        """A GET that found no stored value."""
        self.misses += 1

    def record_admission(self, nbytes: int) -> None:
        """A SET admitted into the data store (reuse observed)."""
        self.reuse_admissions += 1
        self.bytes_stored += nbytes
        self.bytes_written += nbytes

    def record_update(self, new_bytes: int, old_bytes: int) -> None:
        """A SET updating an already-stored value in place."""
        self.bytes_stored += new_bytes - old_bytes
        self.bytes_written += new_bytes

    def record_tag_only_set(self) -> None:
        """A SET declined by the admission filter (key tagged, no store)."""
        self.tag_only_sets += 1

    def record_data_eviction(self) -> None:
        """A stored value evicted to make room (or freed by a tag eviction)."""
        self.data_evictions += 1

    def record_tag_eviction(self) -> None:
        """A tag-directory entry evicted (reuse history lost)."""
        self.tag_evictions += 1

    def record_delete(self) -> None:
        """An explicit DEL that removed a stored value."""
        self.deletes += 1

    def record_value_freed(self, nbytes: int) -> None:
        """A stored value released (eviction or delete): bytes accounting."""
        self.bytes_stored -= nbytes

    # -- derived views -----------------------------------------------------------

    @property
    def gets(self) -> int:
        """Total GET requests observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of GETs served from the data store."""
        total = self.gets
        return self.hits / total if total else 0.0

    def latency_quantiles(self) -> dict:
        """p50/p99 over the retained reservoir, in seconds."""
        return {
            "p50_s": quantile(self.latencies, 0.50),
            "p99_s": quantile(self.latencies, 0.99),
        }

    def snapshot(self) -> dict:
        """JSON-safe view of the counters (used by the STATS command)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "gets": self.gets,
            "hit_rate": self.hit_rate,
            "reuse_admissions": self.reuse_admissions,
            "tag_only_sets": self.tag_only_sets,
            "data_evictions": self.data_evictions,
            "tag_evictions": self.tag_evictions,
            "deletes": self.deletes,
            "bytes_stored": self.bytes_stored,
            "bytes_written": self.bytes_written,
            "latency_samples": self.latency_count,
            "busy_s": self.busy_s,
            "reservoir_occupancy": len(self.latencies),
            "reservoir_capacity": self.latency_window,
            **self.latency_quantiles(),
        }


def merge_snapshots(snapshots: list) -> dict:
    """Aggregate per-shard snapshots into a cluster-wide summary.

    Counters add; the hit rate is recomputed from the summed counters, and
    latency quantiles are reported as the max across shards (the slowest
    shard bounds user-visible tail latency).
    """
    total = {k: 0 for k in (
        "hits", "misses", "gets", "reuse_admissions", "tag_only_sets",
        "data_evictions", "tag_evictions", "deletes",
        "bytes_stored", "bytes_written", "latency_samples",
        "reservoir_occupancy", "reservoir_capacity",
    )}
    p50 = p99 = 0.0
    busy_s = 0.0
    for snap in snapshots:
        for key in total:
            total[key] += snap.get(key, 0)
        busy_s += snap.get("busy_s", 0.0)
        p50 = max(p50, snap["p50_s"])
        p99 = max(p99, snap["p99_s"])
    total["busy_s"] = busy_s
    total["hit_rate"] = total["hits"] / total["gets"] if total["gets"] else 0.0
    total["p50_s"] = p50
    total["p99_s"] = p99
    return total
