"""Per-shard serving statistics for :mod:`repro.service`.

Each shard owns one :class:`ShardStats`: monotonic counters mirroring the
simulator's accounting (hits, misses, reuse admissions, evictions on both
the tag and data sides) plus a bounded latency reservoir from which p50/p99
are computed on demand.  Counters are plain ints mutated under the shard
lock, so snapshots are consistent with the store contents they describe.

The reservoir is a fixed-size ring buffer of the most recent request
latencies (seconds).  A ring is preferred over reservoir sampling because
serving latency drifts with load; quantiles over the recent window answer
the operational question ("what is p99 *now*?") that STATS exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: default number of latency samples retained per shard
LATENCY_WINDOW = 4096


def quantile(samples: list, q: float) -> float:
    """Linear-interpolated quantile of ``samples`` (``q`` in [0, 1])."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class ShardStats:
    """Counters and latency window for one shard."""

    #: GETs served from the data store
    hits: int = 0
    #: GETs not served (tag-only or unknown key)
    misses: int = 0
    #: SETs admitted into the data store because the tag showed reuse
    reuse_admissions: int = 0
    #: SETs declined by the admission filter (key only tagged, no data stored)
    tag_only_sets: int = 0
    #: data-store entries evicted to make room (Clock victims)
    data_evictions: int = 0
    #: tag-directory entries evicted (NRR victims), i.e. reuse history lost
    tag_evictions: int = 0
    #: explicit DELs that removed a stored value
    deletes: int = 0
    #: bytes currently held by the data store
    bytes_stored: int = 0
    #: total bytes ever written into the data store
    bytes_written: int = 0
    #: recent request latencies in seconds (ring buffer)
    latencies: list = field(default_factory=list, repr=False)
    latency_window: int = LATENCY_WINDOW
    _latency_pos: int = field(default=0, repr=False)

    def record_latency(self, seconds: float) -> None:
        """Append one request latency, overwriting the oldest past the window."""
        if len(self.latencies) < self.latency_window:
            self.latencies.append(seconds)
        else:
            self.latencies[self._latency_pos] = seconds
            self._latency_pos = (self._latency_pos + 1) % self.latency_window

    @property
    def gets(self) -> int:
        """Total GET requests observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of GETs served from the data store."""
        total = self.gets
        return self.hits / total if total else 0.0

    def latency_quantiles(self) -> dict:
        """p50/p99 over the retained latency window, in seconds."""
        return {
            "p50_s": quantile(self.latencies, 0.50),
            "p99_s": quantile(self.latencies, 0.99),
        }

    def snapshot(self) -> dict:
        """JSON-safe view of the counters (used by the STATS command)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "gets": self.gets,
            "hit_rate": self.hit_rate,
            "reuse_admissions": self.reuse_admissions,
            "tag_only_sets": self.tag_only_sets,
            "data_evictions": self.data_evictions,
            "tag_evictions": self.tag_evictions,
            "deletes": self.deletes,
            "bytes_stored": self.bytes_stored,
            "bytes_written": self.bytes_written,
            "latency_samples": len(self.latencies),
            **self.latency_quantiles(),
        }


def merge_snapshots(snapshots: list) -> dict:
    """Aggregate per-shard snapshots into a cluster-wide summary.

    Counters add; the hit rate is recomputed from the summed counters, and
    latency quantiles are reported as the max across shards (the slowest
    shard bounds user-visible tail latency).
    """
    total = {k: 0 for k in (
        "hits", "misses", "gets", "reuse_admissions", "tag_only_sets",
        "data_evictions", "tag_evictions", "deletes",
        "bytes_stored", "bytes_written", "latency_samples",
    )}
    p50 = p99 = 0.0
    for snap in snapshots:
        for key in total:
            total[key] += snap[key]
        p50 = max(p50, snap["p50_s"])
        p99 = max(p99, snap["p99_s"])
    total["hit_rate"] = total["hits"] / total["gets"] if total["gets"] else 0.0
    total["p50_s"] = p50
    total["p99_s"] = p99
    return total
