"""In-process object cache with the paper's selective (reuse-based) admission.

:class:`ReuseStore` transplants the reuse cache's decoupled tag/data design
(Section 3 of the paper, :class:`repro.core.reuse_cache.ReuseCache`) from
64-byte lines to key/value objects:

* a **tag directory** tracks keys the store has *seen*, independently of
  whether their value is held.  It is set-associative, sized independently
  of the data store, and replaced with NRR
  (:class:`repro.replacement.nrr.NRRPolicy`) so recently *reused* keys keep
  their history;
* a **data store** holds values only for keys whose reuse has been observed.
  It is fully associative with Clock eviction
  (:class:`repro.replacement.clock.ClockPolicy`), the paper's choice for the
  fully associative data array.

Admission mirrors the paper's state machine (``I → TO → S``):

* first GET of a key **misses and allocates a tag only**;
* a second GET while the tag is resident **detects reuse** — the next SET of
  that key is admitted into the data store;
* a SET whose key has no observed reuse is **declined**: the key is tagged
  (first access) but the value is not stored, so one-touch streams never
  displace the reused working set.

Evicting a data entry demotes the key to tag-only *keeping its reuse
history* (the paper's ``S → TO`` on DataRepl), so a re-fetch re-admits it.
Evicting a tag drops everything, including any stored value (``* → I``).
``admission="always"`` disables the filter — every SET stores — giving the
conventional-cache baseline for apples-to-apples comparisons.

All public methods are thread-safe (one re-entrant lock per store); the
sharded front end in :mod:`repro.service.sharding` relies on this.
"""

from __future__ import annotations

import hashlib
import random
import threading

from ..replacement.clock import ClockPolicy
from ..replacement.nrr import NRRPolicy
from .stats import ShardStats

#: admission policies understood by :class:`ReuseStore`
ADMISSION_POLICIES = ("reuse", "always")


def stable_hash(key: str) -> int:
    """Deterministic 64-bit hash of ``key``, stable across processes.

    Python's builtin ``hash`` on strings is salted per process, which would
    scramble the key→shard and key→tag-set maps between a server and its
    clients (and between runs); blake2b is not.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ReuseStore:
    """Thread-safe object cache admitting only keys with observed reuse."""

    def __init__(
        self,
        data_capacity: int,
        tag_capacity: int | None = None,
        tag_assoc: int = 8,
        admission: str = "reuse",
        seed: int = 0,
    ):
        if data_capacity <= 0:
            raise ValueError(f"data_capacity must be positive, got {data_capacity}")
        if tag_capacity is None:
            tag_capacity = 4 * data_capacity  # paper: tags cover >> data entries
        if tag_capacity < data_capacity:
            raise ValueError(
                f"tag directory ({tag_capacity}) cannot be smaller than the "
                f"data store ({data_capacity}): every stored value is tracked"
            )
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, got {admission!r}"
            )
        tag_assoc = min(tag_assoc, tag_capacity)

        self.data_capacity = data_capacity
        self.tag_assoc = tag_assoc
        self.num_tag_sets = max(1, tag_capacity // tag_assoc)
        self.tag_capacity = self.num_tag_sets * tag_assoc
        self.admission = admission

        rng = random.Random(seed)
        # tag directory: key + reuse flag per way, NRR picks victims
        self._tag_keys = [[None] * tag_assoc for _ in range(self.num_tag_sets)]
        self._tag_reused = [[False] * tag_assoc for _ in range(self.num_tag_sets)]
        self._tag_index = {}  # key -> (set_idx, way)
        self._nrr = NRRPolicy(self.num_tag_sets, tag_assoc, rng)

        # data store: fully associative value slots, Clock picks victims
        self._values = [None] * data_capacity  # way -> value bytes
        self._data_index = {}  # key -> way
        self._data_key = [None] * data_capacity  # way -> key (reverse pointer)
        self._free = list(range(data_capacity - 1, -1, -1))
        self._clock = ClockPolicy(1, data_capacity, rng)

        self._seed = seed
        self.stats = ShardStats(seed=seed)
        self._lock = threading.RLock()
        #: optional ``fn(key, kind)`` observing evictions the store decides
        #: internally, with ``kind`` in ``("data", "tag")``.  The cluster
        #: layer uses this to turn a data/tag eviction into the distributed
        #: protocol's DataRepl/TagRepl events (replica invalidation); the
        #: callback runs under the store lock and must not re-enter the
        #: store.
        self.evict_listener = None
        #: optional ``fn(key, decision)`` observing every admission-relevant
        #: decision the store takes, with ``decision`` one of
        #: ``("tag_alloc", "reuse", "deny", "admit", "update", "delete",
        #: "evict_data", "evict_tag")``.  The observability layer turns
        #: these into per-key audit events (``repro explain``); same
        #: contract as ``evict_listener``: runs under the store lock, must
        #: not re-enter the store.  ``None`` (the default) costs one
        #: ``is not None`` branch per decision point.
        self.decision_listener = None

    # -- public API ----------------------------------------------------------

    def get(self, key: str):
        """Look up ``key``; returns the value bytes or ``None`` on a miss.

        A miss on an untracked key allocates a tag-only entry (first access);
        a miss on a tracked key marks it reused, arming admission for the
        next SET (second access — the paper's ``TO`` hit).
        """
        with self._lock:
            way = self._data_index.get(key)
            if way is not None:
                self._clock.on_hit(0, way)
                set_idx, tag_way = self._tag_index[key]
                self._nrr.on_hit(set_idx, tag_way)
                self.stats.record_hit()
                return self._values[way]

            self.stats.record_miss()
            loc = self._tag_index.get(key)
            if loc is not None:
                set_idx, tag_way = loc
                self._tag_reused[set_idx][tag_way] = True
                self._nrr.on_hit(set_idx, tag_way)
                if self.decision_listener is not None:
                    self.decision_listener(key, "reuse")
            else:
                self._insert_tag(key)
            return None

    def set(self, key: str, value: bytes) -> bool:
        """Offer ``value`` for ``key``; returns True iff the value was stored.

        Stored when the key already holds a value (update in place), when its
        tag shows observed reuse, or when ``admission == "always"``.
        Declined offers still tag the key, so the *next* GET+SET pair admits.
        """
        with self._lock:
            way = self._data_index.get(key)
            if way is not None:  # update in place
                self.stats.record_update(len(value), len(self._values[way]))
                self._values[way] = value
                self._clock.on_hit(0, way)
                if self.decision_listener is not None:
                    self.decision_listener(key, "update")
                return True

            loc = self._tag_index.get(key)
            if loc is None:
                loc = self._insert_tag(key)
            set_idx, tag_way = loc

            if self.admission == "reuse" and not self._tag_reused[set_idx][tag_way]:
                self.stats.record_tag_only_set()
                if self.decision_listener is not None:
                    self.decision_listener(key, "deny")
                return False

            way = self._allocate_data_way()
            self._values[way] = value
            self._data_key[way] = key
            self._data_index[key] = way
            self._clock.on_fill(0, way)
            self.stats.record_admission(len(value))
            if self.decision_listener is not None:
                self.decision_listener(key, "admit")
            return True

    def force_set(self, key: str, value: bytes) -> bool:
        """Store ``value`` bypassing the admission filter (always stores).

        Used for key migration during cluster rebalancing: the value
        already proved its reuse on the node it is moving *from*, so the
        new owner marks the tag reused and admits directly instead of
        making the key re-earn admission from scratch.
        """
        with self._lock:
            loc = self._tag_index.get(key)
            if loc is None:
                loc = self._insert_tag(key)
            set_idx, tag_way = loc
            self._tag_reused[set_idx][tag_way] = True
            return self.set(key, value)

    def delete(self, key: str) -> bool:
        """Drop ``key`` entirely (tag and value); True iff a value was held."""
        with self._lock:
            had_value = False
            way = self._data_index.pop(key, None)
            if way is not None:
                self._release_data_way(way)
                self.stats.record_delete()
                had_value = True
                if self.decision_listener is not None:
                    self.decision_listener(key, "delete")
            loc = self._tag_index.pop(key, None)
            if loc is not None:
                set_idx, tag_way = loc
                self._tag_keys[set_idx][tag_way] = None
                self._tag_reused[set_idx][tag_way] = False
                self._nrr.on_invalidate(set_idx, tag_way)
            return had_value

    def contains(self, key: str) -> bool:
        """True iff a value for ``key`` is currently stored."""
        with self._lock:
            return key in self._data_index

    def is_tracked(self, key: str) -> bool:
        """True iff ``key`` has a tag-directory entry (seen at least once)."""
        with self._lock:
            return key in self._tag_index

    def keys(self) -> list:
        """Keys with a stored value, sorted (deterministic migration order)."""
        with self._lock:
            return sorted(self._data_index)

    def __len__(self) -> int:
        return len(self._data_index)

    def clear(self) -> None:
        """Drop every entry and reset counters (stats object is replaced)."""
        with self._lock:
            for set_idx in range(self.num_tag_sets):
                for way in range(self.tag_assoc):
                    self._tag_keys[set_idx][way] = None
                    self._tag_reused[set_idx][way] = False
                    self._nrr.on_invalidate(set_idx, way)
            for way in range(self.data_capacity):
                if self._values[way] is not None:
                    self._clock.on_invalidate(0, way)
                self._values[way] = None
                self._data_key[way] = None
            self._tag_index.clear()
            self._data_index.clear()
            self._free = list(range(self.data_capacity - 1, -1, -1))
            self.stats = ShardStats(seed=self._seed)

    # -- internals -----------------------------------------------------------

    def _tag_set_of(self, key: str) -> int:
        # decorrelate from the shard map, which uses the low bits of the
        # same hash: take the set index from the high half
        return (stable_hash(key) >> 32) % self.num_tag_sets

    def _insert_tag(self, key: str):
        """Allocate a tag-directory entry for ``key``; returns (set, way)."""
        set_idx = self._tag_set_of(key)
        keys = self._tag_keys[set_idx]
        try:
            way = keys.index(None)
        except ValueError:
            way = self._evict_tag(set_idx)
        keys[way] = key
        self._tag_reused[set_idx][way] = False
        self._tag_index[key] = (set_idx, way)
        self._nrr.on_fill(set_idx, way)
        if self.decision_listener is not None:
            self.decision_listener(key, "tag_alloc")
        return set_idx, way

    def _evict_tag(self, set_idx: int) -> int:
        """Pick and clear an NRR tag victim; frees any stored value too."""
        keys = self._tag_keys[set_idx]
        # prefer tags without data (the paper's NRR filters out lines the
        # directory pins); fall back to all ways when every tag holds data
        candidates = [w for w in range(self.tag_assoc)
                      if keys[w] not in self._data_index]
        if not candidates:
            candidates = list(range(self.tag_assoc))
        way = self._nrr.victim(set_idx, candidates)
        victim_key = keys[way]
        data_way = self._data_index.pop(victim_key, None)
        if data_way is not None:  # tag eviction frees both (paper: * -> I)
            self._release_data_way(data_way)
            self.stats.record_data_eviction()
        del self._tag_index[victim_key]
        keys[way] = None
        self._tag_reused[set_idx][way] = False
        self._nrr.on_invalidate(set_idx, way)
        self.stats.record_tag_eviction()
        if self.evict_listener is not None:
            self.evict_listener(victim_key, "tag")
        if self.decision_listener is not None:
            self.decision_listener(victim_key, "evict_tag")
        return way

    def _allocate_data_way(self) -> int:
        """Grab a free data slot, evicting a Clock victim if none is free."""
        if self._free:
            return self._free.pop()
        way = self._clock.victim(0, list(range(self.data_capacity)))
        victim_key = self._data_key[way]
        del self._data_index[victim_key]
        self.stats.record_value_freed(len(self._values[way]))
        self._values[way] = None
        self._data_key[way] = None
        self._clock.on_invalidate(0, way)
        self.stats.record_data_eviction()
        if self.evict_listener is not None:
            self.evict_listener(victim_key, "data")
        if self.decision_listener is not None:
            self.decision_listener(victim_key, "evict_data")
        # demote, keeping the reuse history (paper: S -> TO on DataRepl);
        # the tag stays resident so the next fetch re-admits the key
        return way

    def _release_data_way(self, way: int) -> None:
        self.stats.record_value_freed(len(self._values[way]))
        self._values[way] = None
        self._data_key[way] = None
        self._clock.on_invalidate(0, way)
        self._free.append(way)
