"""repro.service — serving-stack machinery built on the paper's policies.

The simulator answers "would the reuse cache have hit?"; this package serves
real GET/SET traffic with the same decision logic:

* :class:`~repro.service.store.ReuseStore` — thread-safe object cache whose
  admission is the paper's selective allocation (NRR tag directory, Clock
  data store);
* :class:`~repro.service.sharding.ShardedStore` — hash-sharded front end;
* :class:`~repro.service.server.CacheServer` — asyncio TCP server
  (GET/SET/DEL/STATS protocol, connection limits, graceful shutdown);
* :class:`~repro.service.client.CacheClient` — pooled asyncio client with
  retry/backoff;
* :mod:`~repro.service.loadgen` — replays :mod:`repro.workloads` traces as
  cache traffic, closed-loop, so hit rates line up with the simulator's;
* :class:`~repro.service.stats.ShardStats` — per-shard counters and
  latency quantiles surfaced through STATS.

Start a server with ``python -m repro serve`` (or the ``repro`` console
script); benchmark admission policies with ``repro bench-service``.
"""

from .client import CacheClient, ServerError
from .loadgen import LoadResult, key_of, replay_store, run_load, value_of
from .server import CacheServer, ProtocolError, run_server
from .sharding import ShardedStore
from .stats import ShardStats, merge_snapshots, quantile
from .store import ReuseStore, stable_hash

__all__ = [
    "ReuseStore",
    "ShardedStore",
    "CacheServer",
    "CacheClient",
    "ServerError",
    "ProtocolError",
    "ShardStats",
    "LoadResult",
    "run_server",
    "run_load",
    "replay_store",
    "key_of",
    "value_of",
    "stable_hash",
    "merge_snapshots",
    "quantile",
]
