"""Wire protocol v2: length-prefixed binary frames for :mod:`repro.service`.

The v1 protocol is line-framed text — one request, one round trip, a
fresh ``bytes`` per request.  v2 keeps the same verbs (plus batch verbs)
but frames them as compact binary records so a connection can carry many
requests in flight at once (pipelining) and both ends can reuse their
encode buffers.

Frame layout (big-endian, 12-byte header)::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       1     magic      0xA8  (invalid UTF-8 start byte: a v1
                             server answers "ERR request not utf-8"
                             instead of hanging, which is what the
                             negotiation handshake relies on)
    1       1     version    2
    2       1     verb id    requests: VERB_IDS; responses: STATUS_IDS
    3       1     flags      bit 0 (FLAG_TRACE): payload starts with a
                             u16-length-prefixed trace token
                             ("<trace-id>/<span-id>", the same token v1
                             carries as a trailing ``T=`` text field)
    4       4     sequence   u32; responses echo the request's sequence,
                             which is how a pipelining client matches
                             interleaved responses to callers
    8       4     length     u32 payload byte count (after the header)

Payload fields are typed (see ``REQUEST_FIELDS``): strings are
u16-length-prefixed UTF-8, values are u32-length-prefixed bytes, versions
are u64, batches are u32-counted repetitions.  Responses are a status id
plus either a raw blob (VALUE/STATS/METRICS/TRACE/ERR/CSTATUS bodies) or
a typed batch payload (VALUES/STATUSES).

Errors split by trust in the stream: :class:`FrameError` means the frame
boundary itself is gone (bad magic, truncation, oversize) and the
connection must drop; :class:`FieldError` means one well-framed payload
was malformed — the server answers with an ERR frame and the connection
stays usable, mirroring v1's ``ERR <reason>`` behaviour.
"""

from __future__ import annotations

import asyncio
import struct

#: hard cap on a single value accepted over the wire (16 MiB); v1's
#: ``server.MAX_VALUE_BYTES`` re-exports this
MAX_VALUE_BYTES = 16 * 1024 * 1024
#: hard cap on one frame's payload (a batch of values plus framing)
MAX_FRAME_PAYLOAD = 32 * 1024 * 1024
#: hard cap on items in one MGET/MSET/MDEL frame
MAX_BATCH_ITEMS = 4096

MAGIC = 0xA8
VERSION = 2
HEADER = struct.Struct(">BBBBII")
HEADER_SIZE = HEADER.size

#: flags bit 0: payload begins with a u16-prefixed trace token
FLAG_TRACE = 0x01

# Request verb ids.  Plain literals on purpose: FLOW003 cross-checks these
# keys against the version-aware protocol spec (devtools/flow).
VERB_IDS = {
    "HELLO": 1,
    "GET": 2,
    "SET": 3,
    "DEL": 4,
    "MGET": 5,
    "MSET": 6,
    "MDEL": 7,
    "STATS": 8,
    "METRICS": 9,
    "TRACE": 10,
    "PING": 11,
    "QUIT": 12,
    "REPL": 16,
    "INVAL": 17,
    "PUTS": 18,
    "RGET": 19,
    "CSTATUS": 20,
    "DRAIN": 21,
}

# Response status ids (the verb-id byte of a response frame).
STATUS_IDS = {
    "HELLO": 1,
    "VALUE": 2,
    "MISS": 3,
    "STORED": 4,
    "TAGGED": 5,
    "DELETED": 6,
    "NOTFOUND": 7,
    "PONG": 8,
    "BYE": 9,
    "ERR": 10,
    "STATS": 11,
    "METRICS": 12,
    "TRACE": 13,
    "VALUES": 14,
    "STATUSES": 15,
    "REPLICATED": 16,
    "STALE": 17,
    "INVALED": 18,
    "OK": 19,
    "CSTATUS": 20,
    "DRAINING": 21,
}

VERB_NAMES = {v: k for k, v in VERB_IDS.items()}
STATUS_NAMES = {v: k for k, v in STATUS_IDS.items()}

#: typed payload schema per request verb.  Field kinds:
#: ``key``/``peer`` — u16-prefixed UTF-8 string; ``value`` — u32-prefixed
#: bytes; ``version`` — u64; ``keys`` — u32 count + strings; ``items`` —
#: u32 count + (string, bytes) pairs; ``blob`` — the raw payload rest.
REQUEST_FIELDS = {
    "HELLO": ("blob",),
    "GET": ("key",),
    "SET": ("key", "value"),
    "DEL": ("key",),
    "MGET": ("keys",),
    "MSET": ("items",),
    "MDEL": ("keys",),
    "STATS": (),
    "METRICS": (),
    "TRACE": (),
    "PING": (),
    "QUIT": (),
    "REPL": ("key", "version", "value"),
    "INVAL": ("key", "version"),
    "PUTS": ("key", "peer"),
    "RGET": ("key",),
    "CSTATUS": (),
    "DRAIN": (),
}

#: HELLO probe payload.  The trailing newline matters: sent to a v1
#: server, the frame reads as one garbage "line" that *terminates*, so
#: readline() returns, the server answers ``ERR request not utf-8`` and
#: the connection stays usable for the v1 fallback.
HELLO_PAYLOAD = b"v2\n"


class CodecError(Exception):
    """Base class for v2 framing/field errors."""


class FrameError(CodecError):
    """Frame boundary violated (bad magic/version, truncation, oversize).

    The byte stream can no longer be trusted: drop the connection.
    """


class FieldError(CodecError):
    """One well-framed payload was malformed; the connection survives."""


class Frame:
    """One decoded v2 frame: verb/status id, flags, sequence, payload."""

    __slots__ = ("verb_id", "flags", "seq", "payload")

    def __init__(self, verb_id: int, flags: int, seq: int, payload: bytes):
        self.verb_id = verb_id
        self.flags = flags
        self.seq = seq
        self.payload = payload

    def __repr__(self):  # pragma: no cover - debugging aid
        name = VERB_NAMES.get(self.verb_id) or STATUS_NAMES.get(self.verb_id)
        return (f"Frame({name or self.verb_id}, flags={self.flags:#x}, "
                f"seq={self.seq}, len={len(self.payload)})")


class FrameEncoder:
    """Builds outgoing frames into one reused ``bytearray``.

    The buffer is cleared (not reallocated) per frame, so steady-state
    encoding does zero per-request allocations beyond the final
    ``bytes()`` snapshot handed to the transport.  Not task-safe: each
    connection/writer owns its encoder.
    """

    __slots__ = ("_buf",)

    def __init__(self, initial: int = 4096):
        self._buf = bytearray(initial)
        del self._buf[:]

    def begin(self, verb_id: int, seq: int) -> bytearray:
        """Start a frame; returns the buffer to append payload bytes to."""
        buf = self._buf
        del buf[:]
        buf += HEADER.pack(MAGIC, VERSION, verb_id, 0, seq, 0)
        return buf

    def put_str(self, text: str) -> None:
        raw = text.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise FieldError(f"string field too long ({len(raw)} bytes)")
        buf = self._buf
        buf += struct.pack(">H", len(raw))
        buf += raw

    def put_bytes(self, value: bytes) -> None:
        if len(value) > MAX_VALUE_BYTES:
            raise FieldError(f"value too large ({len(value)} bytes)")
        buf = self._buf
        buf += struct.pack(">I", len(value))
        buf += value

    def put_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def put_u32(self, value: int) -> None:
        self._buf += struct.pack(">I", value)

    def put_u64(self, value: int) -> None:
        self._buf += struct.pack(">Q", value)

    def put_blob(self, raw: bytes) -> None:
        self._buf += raw

    def set_trace(self, token: str) -> None:
        """Mark FLAG_TRACE and prepend the u16-prefixed trace token.

        Must be called right after :meth:`begin`, before payload fields.
        """
        raw = token.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise FieldError("trace token too long")
        buf = self._buf
        buf[3] |= FLAG_TRACE
        buf += struct.pack(">H", len(raw))
        buf += raw

    def finish(self) -> bytes:
        """Patch the payload length in and snapshot the frame."""
        buf = self._buf
        payload_len = len(buf) - HEADER_SIZE
        if payload_len > MAX_FRAME_PAYLOAD:
            raise FieldError(f"frame payload too large ({payload_len} bytes)")
        struct.pack_into(">I", buf, 8, payload_len)
        return bytes(buf)

    def simple(self, verb_id: int, seq: int, payload: bytes = b"",
               trace: "str | None" = None) -> bytes:
        """One-call encode for frames whose payload is a ready blob."""
        self.begin(verb_id, seq)
        if trace is not None:
            self.set_trace(trace)
        self.put_blob(payload)
        return self.finish()


async def read_frame(reader, max_payload: int = MAX_FRAME_PAYLOAD,
                     first_byte: bytes = b""):
    """Read one v2 frame; ``None`` on clean EOF at a frame boundary.

    ``first_byte`` lets the server's protocol sniffer hand back the byte
    it peeked.  Truncation mid-frame, a wrong magic/version, or an
    oversized payload raise :class:`FrameError` — the stream is
    unframeable and the connection must drop.
    """
    want = HEADER_SIZE - len(first_byte)
    try:
        header = first_byte + await reader.readexactly(want)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not first_byte:
            return None  # clean EOF between frames
        raise FrameError("truncated frame header") from None
    magic, version, verb_id, flags, seq, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic:#x}")
    if version != VERSION:
        raise FrameError(f"unsupported protocol version {version}")
    if length > max_payload:
        raise FrameError(f"frame payload too large ({length} bytes)")
    if length:
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise FrameError("truncated frame payload") from None
    else:
        payload = b""
    return Frame(verb_id, flags, seq, payload)


class PayloadReader:
    """Sequential typed-field decoder over one frame's payload.

    Wraps a ``memoryview`` so field extraction slices without copying;
    only terminal ``bytes()``/``str`` conversions allocate.
    """

    __slots__ = ("_view", "_pos")

    def __init__(self, payload: bytes):
        self._view = memoryview(payload)
        self._pos = 0

    def _take(self, n: int) -> memoryview:
        view, pos = self._view, self._pos
        if pos + n > len(view):
            raise FieldError("payload truncated")
        self._pos = pos + n
        return view[pos:pos + n]

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def string(self) -> str:
        raw = self._take(self.u16())
        try:
            return str(raw, "utf-8")
        except UnicodeDecodeError:
            raise FieldError("string field not utf-8") from None

    def value(self) -> bytes:
        length = self.u32()
        if length > MAX_VALUE_BYTES:
            raise FieldError(f"value too large ({length} bytes)")
        return bytes(self._take(length))

    def rest(self) -> bytes:
        view = self._view[self._pos:]
        self._pos = len(self._view)
        return bytes(view)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._view)


def decode_trace(frame: Frame):
    """Split a frame's trace token (if flagged) from its payload reader.

    Returns ``(token_or_None, PayloadReader)`` positioned past the token.
    """
    rd = PayloadReader(frame.payload)
    token = None
    if frame.flags & FLAG_TRACE:
        raw = rd._take(rd.u16())
        try:
            token = str(raw, "utf-8")
        except UnicodeDecodeError:
            raise FieldError("trace token not utf-8") from None
    return token, rd


def decode_request_fields(verb: str, rd: PayloadReader) -> list:
    """Decode ``REQUEST_FIELDS[verb]`` from ``rd`` into a python list."""
    fields = []
    for kind in REQUEST_FIELDS[verb]:
        if kind in ("key", "peer"):
            fields.append(rd.string())
        elif kind == "value":
            fields.append(rd.value())
        elif kind == "version":
            fields.append(rd.u64())
        elif kind == "keys":
            count = rd.u32()
            if count > MAX_BATCH_ITEMS:
                raise FieldError(f"batch too large ({count} items)")
            fields.append([rd.string() for _ in range(count)])
        elif kind == "items":
            count = rd.u32()
            if count > MAX_BATCH_ITEMS:
                raise FieldError(f"batch too large ({count} items)")
            fields.append([(rd.string(), rd.value()) for _ in range(count)])
        else:  # blob
            fields.append(rd.rest())
    return fields


def encode_request(enc: FrameEncoder, verb: str, fields, seq: int,
                   trace: "str | None" = None) -> bytes:
    """Encode one request frame for ``verb`` with positional ``fields``."""
    enc.begin(VERB_IDS[verb], seq)
    if trace is not None:
        enc.set_trace(trace)
    kinds = REQUEST_FIELDS[verb]
    if len(fields) != len(kinds):
        raise FieldError(f"{verb} takes {len(kinds)} fields, got {len(fields)}")
    for kind, field in zip(kinds, fields):
        if kind in ("key", "peer"):
            enc.put_str(field)
        elif kind == "value":
            enc.put_bytes(field)
        elif kind == "version":
            enc.put_u64(field)
        elif kind == "keys":
            if len(field) > MAX_BATCH_ITEMS:
                raise FieldError(f"batch too large ({len(field)} items)")
            enc.put_u32(len(field))
            for key in field:
                enc.put_str(key)
        elif kind == "items":
            if len(field) > MAX_BATCH_ITEMS:
                raise FieldError(f"batch too large ({len(field)} items)")
            enc.put_u32(len(field))
            for key, value in field:
                enc.put_str(key)
                enc.put_bytes(value)
        else:  # blob
            enc.put_blob(field)
    return enc.finish()


def install_uvloop() -> bool:
    """Install uvloop's event-loop policy if the package is available.

    Purely optional: the container may not ship uvloop, so this gates on
    ImportError and reports whether the fast loop is in effect.
    """
    try:
        import uvloop  # type: ignore
    except ImportError:
        return False
    uvloop.install()
    return True
