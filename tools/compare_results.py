#!/usr/bin/env python
"""Compare two benchmarks/results.txt captures.

Usage::

    python tools/compare_results.py old_results.txt new_results.txt [--tol 0.02]

Parses every ``<label> ... <number>`` table row in both files, matches rows
by (section title, label), and reports numeric drifts beyond the tolerance.
Useful as a manual regression check after changing the simulator or the
workload generators.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

_NUM = re.compile(r"[-+]?\d+\.\d+|[-+]?\d+(?:\.\d+)?%?")


def parse_results(path: Path) -> dict:
    """{(section, label): [numbers...]} for every table row."""
    rows = {}
    section = ""
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if not stripped or set(stripped) <= {"-", " "}:
            continue
        # a section title: contains a colon (table rows never do in the
        # harness's format)
        if ":" in stripped:
            section = stripped.split(":")[0]
            continue
        parts = stripped.split()
        numbers = []
        for token in parts[1:]:
            token = token.rstrip("%x")
            try:
                numbers.append(float(token))
            except ValueError:
                pass
        if numbers:
            rows[(section, parts[0])] = numbers
    return rows


def compare(old: dict, new: dict, tol: float):
    """Yield (key, old_values, new_values, max_drift) for drifted rows."""
    for key in sorted(set(old) & set(new)):
        a, b = old[key], new[key]
        if len(a) != len(b):
            yield key, a, b, float("inf")
            continue
        drift = 0.0
        for x, y in zip(a, b):
            denom = max(abs(x), 1e-9)
            drift = max(drift, abs(y - x) / denom)
        if drift > tol:
            yield key, a, b, drift


def main(argv=None) -> int:
    """CLI entry point; returns 1 when drifts beyond tolerance were found."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", type=Path)
    parser.add_argument("new", type=Path)
    parser.add_argument("--tol", type=float, default=0.02,
                        help="relative drift tolerance (default 2%%)")
    args = parser.parse_args(argv)
    old = parse_results(args.old)
    new = parse_results(args.new)
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    drifted = list(compare(old, new, args.tol))
    for key in only_old:
        print(f"- removed: {key[0]} / {key[1]}")
    for key in only_new:
        print(f"+ added:   {key[0]} / {key[1]}")
    for (section, label), a, b, drift in drifted:
        print(f"~ drift {drift:6.1%}  {section} / {label}: {a} -> {b}")
    print(
        f"{len(drifted)} drifted, {len(only_old)} removed, {len(only_new)} added "
        f"out of {len(set(old) | set(new))} rows (tol {args.tol:.0%})"
    )
    return 1 if drifted else 0


if __name__ == "__main__":
    sys.exit(main())
