"""The no-op observability contract, asserted as a benchmark.

``docs/observability.md`` promises that a disabled
:class:`~repro.obs.Observability` bundle costs the simulator's hot paths
one attribute load and a branch per event site — close enough to free that
every experiment driver can accept an ``obs`` handle unconditionally.  This
suite pins that promise two ways:

* **runtime** — a small fig6-style reuse-cache simulation with the disabled
  bundle must stay within 5% of the un-instrumented baseline (``obs=None``,
  which resolves to the same disabled bundle internally, plus a pure-python
  guard margin for timer noise);
* **results** — enabling metrics *and* tracing must not change a single
  simulated number (the registry only mirrors counters at snapshot time and
  the tracer only records, never steers).

Timing methodology: interleaved min-of-N.  Each repetition times baseline
and no-op back-to-back so CPU frequency drift hits both alike, and the
minimum over repetitions estimates the noise floor rather than the noise.
"""

import time

import pytest

from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import System
from repro.obs import Observability
from repro.workloads.mixes import EXAMPLE_MIX, build_workload

#: relative slack for the no-op runtime (the documented budget)
MAX_OVERHEAD = 0.05
#: absolute slack absorbing timer granularity on very fast runs
ABS_SLACK_S = 0.010
REPEATS = 4


def _simulate(obs, n_refs=4000):
    workload = build_workload(EXAMPLE_MIX, n_refs=n_refs, seed=11, scale=32)
    config = SystemConfig(
        llc=LLCSpec.reuse(8, 1), num_cores=workload.num_cores,
        scale=32, seed=11,
    )
    return System(config, workload, obs=obs).run()


def _timed(obs) -> float:
    start = time.perf_counter()
    _simulate(obs)
    return time.perf_counter() - start


class TestNoopOverhead:
    def test_disabled_obs_within_five_percent(self):
        baseline_s = []
        noop_s = []
        for _ in range(REPEATS):
            baseline_s.append(_timed(None))
            noop_s.append(_timed(Observability.disabled()))
        base, noop = min(baseline_s), min(noop_s)
        assert noop <= base * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S, (
            f"no-op obs run took {noop:.3f}s vs baseline {base:.3f}s "
            f"({(noop / base - 1.0) * 100:+.1f}%, budget "
            f"{MAX_OVERHEAD * 100:.0f}% + {ABS_SLACK_S * 1e3:.0f}ms)"
        )


class TestObservabilityNeutrality:
    def test_enabled_obs_reproduces_baseline_numbers(self):
        baseline = _simulate(None)
        observed = _simulate(
            Observability.enabled(tracing=True, trace_capacity=1 << 16)
        )
        assert observed.performance == baseline.performance
        assert observed.instructions == baseline.instructions
        assert observed.cycles == baseline.cycles
        assert observed.llc_mpki == baseline.llc_mpki

    def test_disabled_bundle_is_the_default(self):
        workload = build_workload(EXAMPLE_MIX, n_refs=200, seed=11, scale=32)
        config = SystemConfig(
            llc=LLCSpec.reuse(8, 1), num_cores=workload.num_cores,
            scale=32, seed=11,
        )
        system = System(config, workload)
        assert system.obs.active is False

    def test_performance_close_across_three_modes(self):
        # belt and braces: the three obs modes agree to full float equality,
        # so approx comparisons in downstream tests never mask a drift
        runs = [
            _simulate(None, n_refs=1000),
            _simulate(Observability.disabled(), n_refs=1000),
            _simulate(Observability.enabled(), n_refs=1000),
        ]
        perfs = {r.performance for r in runs}
        assert len(perfs) == 1, f"obs mode changed results: {perfs}"
        assert runs[0].performance == pytest.approx(runs[1].performance)


class TestPhaseTimerOverhead:
    """The opt-in phase timers share the no-op bundle's 5% budget.

    ``execute_cell_measured`` wraps coarse regions only (cell, workload
    build, simulate), so even the *enabled* timer must stay within the
    documented budget of a bare run — same interleaved min-of-N
    methodology as the no-op test above.
    """

    def test_profiled_cell_within_five_percent(self):
        from repro.experiments.common import BASELINE_SPEC, ExperimentParams
        from repro.runner.engine import execute_cell_measured

        params = ExperimentParams(n_workloads=1, n_refs=4000, scale=32,
                                  seed=11)
        (ref,) = params.workload_refs()
        cell = params.cell(BASELINE_SPEC, ref)
        bare_s, prof_s = [], []
        for _ in range(REPEATS):
            _, bare = execute_cell_measured(cell, profile_phases=False)
            bare_s.append(bare["wall_s"])
            _, prof = execute_cell_measured(cell, profile_phases=True)
            prof_s.append(prof["wall_s"])
        base, prof = min(bare_s), min(prof_s)
        assert prof <= base * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S, (
            f"phase-timed cell took {prof:.3f}s vs bare {base:.3f}s "
            f"({(prof / base - 1.0) * 100:+.1f}%, budget "
            f"{MAX_OVERHEAD * 100:.0f}% + {ABS_SLACK_S * 1e3:.0f}ms)"
        )

    def test_disabled_phase_site_is_nearly_free(self):
        from repro.obs.prof import NULL_PHASE_TIMER, PhaseTimer

        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with NULL_PHASE_TIMER.phase("hot"):
                pass
        disabled_s = time.perf_counter() - start
        enabled = PhaseTimer()
        start = time.perf_counter()
        for _ in range(n):
            with enabled.phase("hot"):
                pass
        enabled_s = time.perf_counter() - start
        # the disabled site must be cheaper than the measuring one and
        # stay in the tens-of-nanoseconds-per-call regime
        assert disabled_s < enabled_s
        assert disabled_s / n < 2e-6
