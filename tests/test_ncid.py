"""Tests for the NCID comparison architecture."""

import random

import pytest

from repro.cache.ncid import NCIDCache
from repro.coherence import State


def make(tag_lines=64, tag_assoc=4, data_lines=32, cores=4):
    return NCIDCache(
        tag_lines, tag_assoc, data_lines, num_cores=cores, rng=random.Random(0)
    )


class TestGeometry:
    def test_data_shares_tag_sets(self):
        ncid = make()
        assert ncid.data_sets == ncid.tags.num_sets
        assert ncid.data_assoc == 2  # 32 data lines / 16 sets

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError):
            NCIDCache(64, 4, 8)  # 8 lines cannot cover 16 sets

    def test_uses_lru_both_arrays(self):
        ncid = make()
        assert ncid.tag_policy_name == "lru"
        assert ncid.data_policy_name == "lru"


class TestAllocationModes:
    def test_normal_leader_allocates_data(self):
        ncid = make()
        # set 0 is thread 0's "normal" leader: every fill gets data
        ncid.access(0, 0, False, 0)  # set 0 (16 sets)
        assert ncid.state_of(0) is State.S
        assert ncid.data_fills == 1

    def test_selective_leader_mostly_tag_only(self):
        ncid = make(tag_lines=256, tag_assoc=4, data_lines=128)
        # set 1 is thread 0's selective leader (addresses = 1 mod 64 sets)
        allocated = 0
        for i in range(100):
            addr = 1 + i * 64
            ncid.access(addr, 0, False, i)
            if ncid.state_of(addr) is not State.TO:
                allocated += 1
        assert allocated < 30  # ~5% expected

    def test_duel_steers_followers(self):
        ncid = make()
        ncid._psel[0] = 0  # normal mode wins for thread 0
        ncid.access(5 * 16 + 5, 0, False, 0)  # a follower set
        assert ncid.normal_fills >= 1

    def test_tag_only_reference_promotes_to_data(self):
        ncid = make()
        ncid._psel[0] = ncid._psel_max  # selective wins
        addr = 5  # follower set
        ncid.access(addr, 0, False, 0)
        if ncid.state_of(addr) is State.TO:  # tag-only fill (95% case)
            ncid.notify_private_eviction(addr, 0, False)
            ncid.access(addr, 0, False, 1)
            assert ncid.state_of(addr) is State.S


class TestReplacement:
    def test_tag_eviction_does_not_protect_private(self):
        ncid = NCIDCache(8, 2, 8, num_cores=4, rng=random.Random(0))
        ncid.access(0, 0, False, 0)  # private resident, LRU
        ncid.access(4, 1, False, 1)
        res = ncid.access(8, 2, False, 2)
        # plain LRU: line 0 evicted despite being in core 0's caches
        assert (0, 0) in res.inclusion_invals

    def test_data_conflicts_within_set(self):
        """Shrinking the data array shrinks per-set data ways: two hot lines
        mapping to one set with 1 data way keep displacing each other."""
        ncid = NCIDCache(64, 4, 16, num_cores=4, rng=random.Random(0))  # 1 way/set
        a, b = 0, 16  # same set (16 sets), normal-leader set 0
        for t in range(6):
            ncid.access(a, 0, False, t)
            ncid.notify_private_eviction(a, 0, False)
            ncid.access(b, 0, False, t)
            ncid.notify_private_eviction(b, 0, False)
        # only one of them can hold data at any time
        resident = set(ncid.resident_data_lines())
        assert len(resident & {a, b}) <= 1
        assert ncid.check_pointer_consistency()

    def test_pointer_consistency_under_traffic(self):
        ncid = make()
        rng = random.Random(3)
        for step in range(1500):
            core = rng.randrange(4)
            addr = rng.randrange(96)
            res = ncid.access(addr, core, rng.random() < 0.3, step)
            del res
            if rng.random() < 0.5:
                try:
                    ncid.notify_private_eviction(addr, core, rng.random() < 0.5)
                except KeyError:
                    pass  # already evicted by inclusion
            if step % 250 == 0:
                assert ncid.check_pointer_consistency()
        assert ncid.check_pointer_consistency()
