"""Tests for the repo linter: engine mechanics and every built-in rule.

Each rule gets a positive fixture (must fire), a negative fixture (must
stay silent) and a suppression fixture (``# repro: noqa=CODE`` silences
it).  The JSON report schema is pinned so CI consumers can rely on it.
"""

import json
import textwrap

import pytest

from repro.devtools.lint import (
    Finding,
    LintEngine,
    RULES,
    Rule,
    default_rules,
    format_json,
    module_name_for,
    run_lint,
)
from repro.devtools.lint.rules import ALLOWED_PEERS, LAYERS, layer_package


def lint_snippet(source, module="repro.cache.fixture", select=None):
    """Lint a dedented source string as if it were ``module``'s file."""
    engine = LintEngine(default_rules(select))
    path = "src/" + module.replace(".", "/") + ".py"
    return engine.lint_source(textwrap.dedent(source), path)


def codes(findings):
    return [f.rule for f in findings]


# -- engine mechanics --------------------------------------------------------


class TestModuleNaming:
    def test_src_layout(self):
        assert module_name_for(
            __import__("pathlib").Path("src/repro/cache/vway.py")
        ) == "repro.cache.vway"

    def test_init_resolves_to_package(self):
        assert module_name_for(
            __import__("pathlib").Path("src/repro/coherence/__init__.py")
        ) == "repro.coherence"

    def test_outside_repro_falls_back_to_stem(self):
        assert module_name_for(
            __import__("pathlib").Path("/tmp/whatever/script.py")
        ) == "script"


class TestEngine:
    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_snippet("def broken(:\n")
        assert codes(findings) == ["REP000"]
        assert "syntax error" in findings[0].message

    def test_registry_has_the_thirteen_repo_rules(self):
        assert sorted(RULES) == [f"REP{i:03d}" for i in range(1, 14)]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule ids"):
            default_rules({"REP999"})

    def test_select_limits_rules(self):
        src = """
        import time
        def f(x=[]):
            return time.time()
        """
        all_codes = set(codes(lint_snippet(src)))
        assert all_codes == {"REP002", "REP005"}
        only = codes(lint_snippet(src, select={"REP005"}))
        assert only == ["REP005"]

    def test_findings_sorted_and_located(self, tmp_path):
        bad = tmp_path / "repro" / "cache" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nx = time.time()\n")
        findings, engine = run_lint([tmp_path])
        assert engine.files_checked == 1
        assert [f.line for f in findings] == [2]
        assert findings[0].path.endswith("bad.py")

    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import time\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "junk.py").write_text("import time\n")
        findings, engine = run_lint([tmp_path])
        assert engine.files_checked == 0 and findings == []


class TestSuppression:
    SRC = """
    import time
    x = time.time()  # repro: noqa=REP002
    """

    def test_noqa_specific_code(self):
        assert lint_snippet(self.SRC) == []

    def test_noqa_counts_suppressions(self):
        engine = LintEngine(default_rules())
        engine.lint_source(textwrap.dedent(self.SRC), "src/repro/cache/x.py")
        assert engine.suppressed == 1

    def test_noqa_bare_suppresses_everything(self):
        src = "import time\nx = time.time()  # repro: noqa\n"
        assert lint_snippet(src) == []

    def test_noqa_other_code_does_not_suppress(self):
        src = "import time\nx = time.time()  # repro: noqa=REP001\n"
        assert codes(lint_snippet(src)) == ["REP002"]

    def test_noqa_list_of_codes(self):
        src = (
            "import time\n"
            "def f(x=[]):\n"
            "    return 1\n"
            "y = time.time()  # repro: noqa=REP001, REP002\n"
        )
        assert codes(lint_snippet(src)) == ["REP005"]

    def test_plain_flake8_noqa_is_not_ours(self):
        src = "import time\nx = time.time()  # noqa\n"
        assert codes(lint_snippet(src)) == ["REP002"]


class TestJsonSchema:
    def test_report_shape(self):
        findings = lint_snippet("import time\nx = time.time()\n")
        engine = LintEngine(default_rules())
        report = json.loads(format_json(findings, 3, engine.rules))
        assert report["version"] == 1
        assert report["files_checked"] == 3
        rule_ids = {r["id"] for r in report["rules"]}
        assert rule_ids == set(RULES)
        for rule in report["rules"]:
            assert set(rule) == {"id", "name", "severity", "description"}
            assert rule["severity"] in ("error", "warning")
        (finding,) = report["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message",
        }
        assert finding["rule"] == "REP002" and finding["line"] == 2


# -- rule fixtures -----------------------------------------------------------


class TestUnseededRandom:
    def test_flags_unseeded_random(self):
        assert codes(lint_snippet("""
        import random
        rng = random.Random()
        """)) == ["REP001"]

    def test_flags_global_module_functions(self):
        findings = lint_snippet("""
        import random
        def pick(ways):
            return random.randint(0, ways - 1)
        """)
        assert codes(findings) == ["REP001"]
        assert "random.randint" in findings[0].message

    def test_flags_unseeded_default_rng_and_legacy_numpy(self):
        assert codes(lint_snippet("""
        import numpy as np
        a = np.random.default_rng()
        b = np.random.rand(4)
        """)) == ["REP001", "REP001"]

    def test_seeded_generators_pass(self):
        assert lint_snippet("""
        import random
        import numpy as np
        rng = random.Random(42)
        g = np.random.default_rng(seed=42)
        x = rng.random()
        """) == []

    def test_out_of_scope_module_ignored(self):
        src = "import random\nrng = random.Random()\n"
        assert codes(lint_snippet(src, module="repro.experiments.f")) == []

    def test_suppression(self):
        src = (
            "import random\n"
            "rng = random.Random()  # repro: noqa=REP001\n"
        )
        assert lint_snippet(src) == []


class TestWallClock:
    def test_flags_time_time_in_simulator(self):
        assert codes(lint_snippet("""
        import time
        def stamp():
            return time.time()
        """)) == ["REP002"]

    def test_flags_datetime_now(self):
        assert codes(lint_snippet("""
        import datetime
        t = datetime.datetime.now()
        """)) == ["REP002"]

    def test_perf_counter_allowed(self):
        # REP002 tolerates the interval clock; routing it through
        # repro.obs.prof is REP011's job, so only REP002 runs here
        assert lint_snippet("""
        import time
        t = time.perf_counter()
        """, select={"REP002"}) == []

    def test_cli_is_out_of_scope(self):
        src = "import time\nt = time.time()\n"
        assert codes(lint_snippet(src, module="repro.__main__")) == []

    def test_suppression(self):
        src = "import time\nt = time.time()  # repro: noqa=REP002\n"
        assert lint_snippet(src) == []


class TestBlockingInAsync:
    def test_flags_sleep_and_open_in_async(self):
        findings = lint_snippet("""
        import time
        async def handler():
            time.sleep(0.1)
            with open("f") as fh:
                return fh.read()
        """)
        assert codes(findings) == ["REP003", "REP003"]

    def test_sync_function_not_flagged(self):
        assert lint_snippet("""
        import time
        def handler():
            time.sleep(0.1)
        """) == []

    def test_nested_sync_def_resets_context(self):
        assert lint_snippet("""
        import time
        async def handler():
            def helper():
                time.sleep(0.1)
            return helper
        """) == []

    def test_asyncio_sleep_allowed(self):
        assert lint_snippet("""
        import asyncio
        async def handler():
            await asyncio.sleep(0.1)
        """) == []

    def test_suppression(self):
        assert lint_snippet("""
        import time
        async def handler():
            time.sleep(0.1)  # repro: noqa=REP003
        """) == []


class TestUnawaitedCoroutine:
    def test_flags_bare_local_coroutine_call(self):
        findings = lint_snippet("""
        async def refill():
            pass
        def kick():
            refill()
        """)
        assert codes(findings) == ["REP004"]
        assert "refill" in findings[0].message

    def test_flags_self_method_and_asyncio_sleep(self):
        assert codes(lint_snippet("""
        import asyncio
        class Server:
            async def drain(self):
                pass
            async def stop(self):
                self.drain()
                asyncio.sleep(1)
        """)) == ["REP004", "REP004"]

    def test_awaited_and_scheduled_calls_pass(self):
        assert lint_snippet("""
        import asyncio
        async def refill():
            pass
        async def main():
            await refill()
            task = asyncio.create_task(refill())
            return task
        """) == []

    def test_foreign_receiver_sharing_name_not_flagged(self):
        # StreamWriter.close() is synchronous even if the module also
        # defines an ``async def close`` (the repro.service.client case).
        assert lint_snippet("""
        async def close():
            pass
        def shutdown(writer):
            writer.close()
        """) == []

    def test_suppression(self):
        assert lint_snippet("""
        async def refill():
            pass
        def kick():
            refill()  # repro: noqa=REP004
        """) == []


class TestMutableDefault:
    def test_flags_literal_and_constructor_defaults(self):
        assert codes(lint_snippet("""
        def f(a, b=[], c=dict()):
            return a
        """)) == ["REP005", "REP005"]

    def test_flags_kwonly_and_async_defaults(self):
        assert codes(lint_snippet("""
        async def f(*, cache={}):
            return cache
        """)) == ["REP005"]

    def test_none_default_passes(self):
        assert lint_snippet("""
        def f(a, b=None, c=()):
            return a
        """) == []

    def test_suppression(self):
        assert lint_snippet("""
        def f(a, b=[]):  # repro: noqa=REP005
            return a
        """) == []


class TestFloatEquality:
    def test_flags_float_literal_comparison_in_metrics(self):
        findings = lint_snippet("""
        def check(rate):
            return rate == 0.5
        """, module="repro.metrics.perf")
        assert codes(findings) == ["REP006"]

    def test_flags_in_service_stats(self):
        src = "def f(p99):\n    return p99 != 1.5\n"
        assert codes(lint_snippet(src, module="repro.service.stats")) == [
            "REP006"
        ]

    def test_int_comparison_and_inequalities_pass(self):
        assert lint_snippet("""
        def check(rate):
            return rate == 0 or rate >= 0.5
        """, module="repro.metrics.perf") == []

    def test_out_of_scope(self):
        src = "def f(x):\n    return x == 0.5\n"
        assert lint_snippet(src, module="repro.cache.vway") == []

    def test_suppression(self):
        src = (
            "def f(x):\n"
            "    return x == 0.5  # repro: noqa=REP006\n"
        )
        assert lint_snippet(src, module="repro.metrics.perf") == []


class TestBareExcept:
    def test_flags_bare_except(self):
        assert codes(lint_snippet("""
        try:
            x = 1
        except:
            pass
        """)) == ["REP007"]

    def test_typed_except_passes(self):
        assert lint_snippet("""
        try:
            x = 1
        except (ValueError, KeyError):
            pass
        """) == []

    def test_suppression(self):
        assert lint_snippet("""
        try:
            x = 1
        except:  # repro: noqa=REP007
            pass
        """) == []


class TestLayerImport:
    def test_simulator_must_not_import_service(self):
        findings = lint_snippet(
            "from repro.service.store import ReuseStore\n",
            module="repro.cache.vway",
        )
        assert codes(findings) == ["REP008"]
        assert "repro.service" in findings[0].message

    def test_relative_parent_import_resolved(self):
        findings = lint_snippet(
            "from ..service import store\n", module="repro.cache.vway"
        )
        assert codes(findings) == ["REP008"]

    def test_from_dot_import_names_resolved(self):
        # ``from .. import service`` inside repro.cache
        findings = lint_snippet(
            "from .. import service\n", module="repro.cache.vway"
        )
        assert codes(findings) == ["REP008"]

    def test_downward_and_peer_imports_pass(self):
        assert lint_snippet("""
        from repro.coherence.states import State
        from ..replacement import make_policy
        from ..core.reuse_cache import ReuseCache
        from ..utils import require_power_of_two
        """, module="repro.cache.vway") == []

    def test_nothing_below_cli_imports_devtools(self):
        findings = lint_snippet(
            "from repro.devtools.lint import run_lint\n",
            module="repro.experiments.fig5",
        )
        assert codes(findings) == ["REP008"]

    def test_main_may_import_devtools(self):
        assert lint_snippet(
            "from .devtools import cli as devtools_cli\n",
            module="repro.__main__",
        ) == []

    def test_layer_table_is_consistent(self):
        # every whitelisted peer pair is same-layer, and the helper
        # resolves submodules to their owning package
        for src, dst in ALLOWED_PEERS:
            assert LAYERS[src] == LAYERS[dst]
        assert layer_package("repro.cache.vway") == "repro.cache"
        assert layer_package("repro.nonexistent") is None

    def test_suppression(self):
        src = (
            "from repro.service import store"
            "  # repro: noqa=REP008\n"
        )
        assert lint_snippet(src, module="repro.cache.vway") == []


class TestCounterBypass:
    def test_flags_nested_counter_mutation(self):
        findings = lint_snippet("""
        class Shard:
            def hit(self):
                self.stats.hits += 1
        """, module="repro.service.store")
        assert codes(findings) == ["REP009"]
        assert "self.stats.hits" in findings[0].message

    def test_flags_deeper_chains(self):
        src = """
        def bump(server):
            server.shard.stats.misses += 1
        """
        assert codes(lint_snippet(src, module="repro.hierarchy.system")) == [
            "REP009"
        ]

    def test_own_counters_and_subscripts_pass(self):
        assert lint_snippet("""
        class Bank:
            def access(self):
                self.hits += 1
                self.counts[3] += 1
                total = 0
                total += 1
                return total
        """, module="repro.cache.vway") == []

    def test_out_of_scope_module_ignored(self):
        src = "def f(r):\n    r.stats.hits += 1\n"
        assert lint_snippet(src, module="repro.experiments.fig5") == []
        assert lint_snippet(src, module="repro.obs.registry") == []

    def test_suppression(self):
        assert lint_snippet("""
        class Shard:
            def tick(self):
                self.clock.hand += 1  # repro: noqa=REP009
        """, module="repro.service.store") == []


class TestObsLayering:
    def test_obs_is_layer_one_and_cli_sits_above(self):
        assert LAYERS["repro.obs"] == 1
        assert LAYERS["repro.obs.cli"] == 5
        assert layer_package("repro.obs.cli") == "repro.obs.cli"
        assert layer_package("repro.obs.registry") == "repro.obs"

    def test_simulator_may_import_obs(self):
        assert lint_snippet(
            "from ..obs.tracing import NULL_TRACER\n",
            module="repro.cache.llc_base",
        ) == []

    def test_coherence_peer_pair_allowed(self):
        assert lint_snippet(
            "from ..obs.tracing import NULL_TRACER\n",
            module="repro.coherence.protocol",
        ) == []

    def test_obs_must_not_import_simulator(self):
        findings = lint_snippet(
            "from repro.cache.vway import VWayLLC\n",
            module="repro.obs.registry",
        )
        assert codes(findings) == ["REP008"]

    def test_obs_cli_may_import_hierarchy_and_service(self):
        assert lint_snippet("""
        from repro.hierarchy.system import System
        from repro.service.client import CacheClient
        """, module="repro.obs.cli") == []

    def test_obs_uses_seeded_random_rules(self):
        src = "import random\nrng = random.Random()\n"
        assert codes(lint_snippet(src, module="repro.obs.registry")) == [
            "REP001"
        ]


# -- plugin API --------------------------------------------------------------


class TestPluginAPI:
    def test_custom_rule_runs_through_engine(self):
        class NoPrintRule(Rule):
            id = "X001"
            name = "no-print"
            description = "print() in library code"

            def check_Call(self, node, ctx):
                import ast

                if isinstance(node.func, ast.Name) and node.func.id == "print":
                    ctx.report(self, node, "print() call")

        engine = LintEngine([NoPrintRule()])
        findings = engine.lint_source(
            "print('hi')\n", "src/repro/cache/x.py"
        )
        assert codes(findings) == ["X001"]
        assert isinstance(findings[0], Finding)

    def test_scoped_rule_skips_other_modules(self):
        class ScopedRule(Rule):
            id = "X002"
            name = "scoped"
            scope = ("repro.metrics",)

            def check_Module(self, node, ctx):
                ctx.report(self, node, "saw a module")

        engine = LintEngine([ScopedRule()])
        assert engine.lint_source("x = 1\n", "src/repro/metrics/a.py")
        assert not engine.lint_source("x = 1\n", "src/repro/cache/a.py")


class TestDecentralisedParallelism:
    def test_flags_executor_import_outside_runner(self):
        findings = lint_snippet(
            "from concurrent.futures import ProcessPoolExecutor\n",
            module="repro.experiments.fig7",
        )
        assert codes(findings) == ["REP010"]
        assert "repro.runner" in findings[0].message

    def test_flags_multiprocessing_import(self):
        findings = lint_snippet(
            "import multiprocessing\n", module="repro.service.server"
        )
        assert codes(findings) == ["REP010"]

    def test_flags_submodule_imports(self):
        assert codes(lint_snippet(
            "import multiprocessing.pool\n", module="repro.hierarchy.system"
        )) == ["REP010"]
        assert codes(lint_snippet(
            "import concurrent.futures as cf\n", module="repro.obs.registry"
        )) == ["REP010"]

    def test_runner_package_is_exempt(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import multiprocessing\n"
        )
        assert lint_snippet(src, module="repro.runner.engine") == []
        assert lint_snippet(src, module="repro.runner") == []

    def test_concurrent_prefix_does_not_overmatch(self):
        # a third-party package that merely starts with "concurrent" is fine
        assert lint_snippet(
            "import concurrently\n", module="repro.experiments.fig7"
        ) == []

    def test_suppression(self):
        assert lint_snippet(
            "import multiprocessing  # repro: noqa=REP010\n",
            module="repro.experiments.fig7",
        ) == []


class TestUnaccountedHostTiming:
    def test_flags_direct_perf_counter(self):
        findings = lint_snippet(
            "import time\nt = time.perf_counter()\n",
            module="repro.service.loadgen",
        )
        assert codes(findings) == ["REP011"]
        assert "repro.obs.prof.clock" in findings[0].message

    def test_flags_process_time_and_ns_variants(self):
        for fn in ("process_time", "perf_counter_ns", "process_time_ns"):
            findings = lint_snippet(
                f"import time\nt = time.{fn}()\n",
                module="repro.experiments.fig5",
            )
            assert codes(findings) == ["REP011"], fn

    def test_flags_from_import(self):
        findings = lint_snippet(
            "from time import perf_counter\n",
            module="repro.service.server",
        )
        assert codes(findings) == ["REP011"]

    def test_obs_and_runner_are_exempt(self):
        src = (
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.process_time()\n"
        )
        assert lint_snippet(src, module="repro.obs.prof") == []
        assert lint_snippet(src, module="repro.runner.engine") == []

    def test_other_time_functions_stay_legal(self):
        # the rule bans the two interval clocks only; monotonic and sleep
        # have non-measurement uses outside the accounting layer
        src = "import time\ntime.sleep(0)\nm = time.monotonic()\n"
        assert lint_snippet(src, module="repro.service.client") == []

    def test_suppression(self):
        assert lint_snippet(
            "import time\n"
            "t = time.perf_counter()  # repro: noqa=REP011\n",
            module="repro.service.loadgen",
        ) == []

    def test_perf_layer_sits_above_experiments(self):
        assert LAYERS["repro.perf"] > LAYERS["repro.experiments"]
        assert LAYERS["repro.__main__"] > LAYERS["repro.perf"]
        # perf importing the registry is legal...
        assert lint_snippet(
            "from repro.experiments import registry\n",
            module="repro.perf.suites",
        ) == []
        # ...but the reverse direction is an architecture violation
        assert codes(lint_snippet(
            "from repro.perf import record_suite\n",
            module="repro.experiments.fig5",
        )) == ["REP008"]


class TestRawTransport:
    def test_flags_socket_import_outside_the_serving_stack(self):
        findings = lint_snippet(
            "import socket\n", module="repro.experiments.fig7"
        )
        assert codes(findings) == ["REP012"]
        assert "ClusterClient" in findings[0].message

    def test_flags_socket_from_import(self):
        assert codes(lint_snippet(
            "from socket import create_connection\n",
            module="repro.obs.exporter",
        )) == ["REP012"]

    def test_flags_asyncio_server_primitives(self):
        for fn in ("start_server", "open_connection"):
            findings = lint_snippet(
                "import asyncio\n"
                f"async def go():\n"
                f"    return await asyncio.{fn}()\n",
                module="repro.experiments.fig7",
            )
            assert "REP012" in codes(findings), fn

    def test_service_and_cluster_are_exempt(self):
        src = (
            "import asyncio\n"
            "import socket\n"
            "async def go():\n"
            "    return await asyncio.open_connection('h', 1)\n"
        )
        assert lint_snippet(src, module="repro.service.server") == []
        assert lint_snippet(src, module="repro.cluster.node") == []

    def test_socketserver_does_not_overmatch(self):
        # a module merely *starting with* "socket" is a different package
        assert lint_snippet(
            "import socketserver\n", module="repro.experiments.fig7"
        ) == []

    def test_suppression(self):
        assert lint_snippet(
            "import socket  # repro: noqa=REP012\n",
            module="repro.experiments.fig7",
        ) == []

    def test_cluster_layering(self):
        # the cluster sits above the service it composes...
        assert LAYERS["repro.cluster"] > LAYERS["repro.service"]
        assert lint_snippet(
            "from repro.service.client import CacheClient\n",
            module="repro.cluster.node",
        ) == []
        # ...the experiments may drive it as a whitelisted peer...
        assert lint_snippet(
            "from repro.cluster import LocalCluster\n",
            module="repro.experiments.cluster_scaling",
        ) == []
        # ...but the service must never reach up into the cluster
        assert codes(lint_snippet(
            "from repro.cluster import ClusterClient\n",
            module="repro.service.server",
        )) == ["REP008"]


class TestUnscopedSpan:
    def test_flags_bare_span_call(self):
        findings = lint_snippet(
            "def handle(tracer):\n"
            "    tracer.span('request')\n",
            module="repro.service.server",
        )
        assert codes(findings) == ["REP013"]
        assert "with" in findings[0].message

    def test_flags_bare_phase_call(self):
        assert codes(lint_snippet(
            "def run(prof):\n"
            "    prof.phase('simulate')\n",
            module="repro.runner.engine",
        )) == ["REP013"]

    def test_flags_manual_start_stop_lifecycle(self):
        findings = lint_snippet(
            "def run(span, timer):\n"
            "    span.start()\n"
            "    timer.stop()\n",
            module="repro.service.server",
        )
        assert codes(findings) == ["REP013", "REP013"]

    def test_with_block_is_legal(self):
        assert lint_snippet(
            "def handle(tracer, prof):\n"
            "    with tracer.span('request'):\n"
            "        with prof.phase('parse'):\n"
            "            pass\n",
            module="repro.service.server",
        ) == []

    def test_async_with_is_legal(self):
        assert lint_snippet(
            "async def handle(tracer):\n"
            "    async with tracer.span('request'):\n"
            "        pass\n",
            module="repro.service.server",
        ) == []

    def test_repro_obs_is_exempt(self):
        src = (
            "def span_impl(self):\n"
            "    self.span('x')\n"
            "    timer.start()\n"
        )
        assert lint_snippet(src, module="repro.obs.tracing") == []

    def test_unrelated_start_receivers_stay_legal(self):
        assert lint_snippet(
            "async def boot(node, server):\n"
            "    await node.start()\n"
            "    await server.stop()\n",
            module="repro.cluster.local",
        ) == []

    def test_suppression(self):
        assert lint_snippet(
            "def handle(tracer):\n"
            "    tracer.span('request')  # repro: noqa=REP013\n",
            module="repro.service.server",
        ) == []

    def test_obs_cli_may_import_the_cluster_client(self):
        # repro top --cluster fans in over ClusterClient: peer-listed
        assert ("repro.obs.cli", "repro.cluster") in ALLOWED_PEERS
        assert lint_snippet(
            "from repro.cluster.client import ClusterClient\n",
            module="repro.obs.cli",
        ) == []
