"""Timing tests: the latency accounting of Table 4, observed end to end.

Each test builds a trace whose steady-state behaviour is pinned to one
hierarchy level and checks the measured CPI against the configured
latencies.
"""

import pytest

from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import run_workload
from repro.workloads import Trace, Workload

GAP = 4  # non-memory instructions between references


def one_core_workload(addr_pattern, n_cores=8, writes=None):
    """Core 0 runs the pattern; other cores idle on a single private line."""
    n = len(addr_pattern)
    traces = [Trace("probe", [GAP] * n, addr_pattern, writes or [0] * n)]
    for c in range(1, n_cores):
        base = (c + 1) << 30
        traces.append(Trace(f"idle{c}", [GAP] * n, [base] * n, [0] * n))
    return Workload("timing", traces)


def cpi_of(result, core=0):
    return result.cycles[core] / result.instructions[core]


@pytest.fixture
def config():
    return SystemConfig(llc=LLCSpec.conventional(8))


class TestLevelLatencies:
    def test_l1_resident_cpi_is_one(self, config):
        pattern = [0, 1, 2, 3] * 200
        result = run_workload(config, one_core_workload(pattern), warmup_frac=0.25)
        assert cpi_of(result) == pytest.approx(1.0, abs=0.02)

    def test_l2_hit_latency(self, config):
        # 8 lines in one L1 set (4-way, 4 sets): always L1 miss, L2 hit
        pattern = [i * 4 for i in range(8)] * 150
        result = run_workload(config, one_core_workload(pattern), warmup_frac=0.25)
        # steady state: (GAP + 1 + l2_latency) cycles per (GAP + 1) instrs
        expected = (GAP + 1 + config.l2_latency) / (GAP + 1)
        assert cpi_of(result) == pytest.approx(expected, rel=0.03)

    def test_llc_hit_latency(self, config):
        # 48 lines in one L2 set (8-way, 16 sets): L2 misses, SLLC hits.
        # Stride 16 keeps one bank while spreading the SLLC tag sets.
        pattern = [i * 16 for i in range(48)] * 40
        result = run_workload(config, one_core_workload(pattern), warmup_frac=0.25)
        llc_path = config.l2_latency + config.xbar_latency + config.llc_latency
        expected = (GAP + 1 + llc_path) / (GAP + 1)
        assert cpi_of(result) == pytest.approx(expected, rel=0.05)

    def test_dram_latency_floor(self, config):
        # one-pass stream: every reference goes to memory
        pattern = list(range(4000))
        result = run_workload(config, one_core_workload(pattern), warmup_frac=0.25)
        dram_path = (
            config.l2_latency
            + config.xbar_latency
            + config.llc_latency
            + config.dram.row_hit_latency
            + config.xbar_latency
        )
        expected_floor = (GAP + 1 + dram_path) / (GAP + 1)
        assert cpi_of(result) >= expected_floor * 0.98

    def test_hierarchy_ordering(self, config):
        """CPI strictly grows as the working level deepens."""
        l1 = cpi_of(run_workload(config, one_core_workload([0, 1] * 400),
                                 warmup_frac=0.25))
        l2 = cpi_of(run_workload(
            config, one_core_workload([i * 4 for i in range(8)] * 100),
            warmup_frac=0.25))
        llc = cpi_of(run_workload(
            config, one_core_workload([i * 16 for i in range(48)] * 17),
            warmup_frac=0.25))
        dram = cpi_of(run_workload(config, one_core_workload(list(range(800))),
                                   warmup_frac=0.25))
        assert l1 < l2 < llc < dram


class TestReuseCacheTimingBehaviour:
    def test_reuse_reload_pays_memory_latency(self):
        """In the reuse cache the *second* access to a line still pays DRAM
        (the reload); from the third on it enjoys SLLC latency."""
        config = SystemConfig(llc=LLCSpec.reuse(8, 4))
        # a loop over an L2-overflowing set, spread over the SLLC tag sets
        pattern = [i * 16 for i in range(48)] * 40
        reuse = run_workload(config, one_core_workload(pattern), warmup_frac=0.25)
        conv = run_workload(
            SystemConfig(llc=LLCSpec.conventional(8)),
            one_core_workload(pattern),
            warmup_frac=0.25,
        )
        # after warm-up both serve the loop from the SLLC data array
        assert cpi_of(reuse) == pytest.approx(cpi_of(conv), rel=0.05)
        # but the reuse cache performed reload fetches while warming
        assert reuse.llc_stats["reuse_reloads"] > 0

    def test_peer_transfer_cheaper_than_dram(self):
        """A reuse detected while a peer holds the line costs less than a
        memory reload."""
        config = SystemConfig(llc=LLCSpec.reuse(8, 4))
        n = 600
        shared = list(range(256, 256 + n))  # bank-spread shared lines
        # core 0 touches each line first; core 1 touches it later while it
        # is still in core 0's caches -> peer transfers
        t0 = Trace("writer", [GAP] * n, shared, [0] * n)
        t1 = Trace("reader", [GAP] * n, shared, [0] * n)
        idle = [
            Trace(f"idle{c}", [GAP] * n, [((c + 1) << 30)] * n, [0] * n)
            for c in range(2, 8)
        ]
        result = run_workload(
            config, Workload("share", [t0, t1] + idle), warmup_frac=0.0
        )
        stats = result.llc_stats
        assert stats["peer_transfers"] > 0
        # the reader (trailing core) runs faster than the leader who paid DRAM
        assert result.cycles[1] < result.cycles[0]
