"""Tests for Clock and Random replacement, and the policy factory."""

import random

import pytest

from repro.replacement import ClockPolicy, RandomPolicy, make_policy, POLICIES


class TestClock:
    def test_second_chance(self):
        p = ClockPolicy(1, 4, rng=random.Random(0))
        for way in range(4):
            p.on_fill(0, way)
        # all ref bits set: the hand sweeps once clearing them, then evicts
        # the first entry it revisits
        assert p.victim(0, [0, 1, 2, 3]) == 0

    def test_hand_advances(self):
        p = ClockPolicy(1, 4, rng=random.Random(0))
        for way in range(4):
            p.on_fill(0, way)
        first = p.victim(0, [0, 1, 2, 3])
        p.on_invalidate(0, first)
        second = p.victim(0, [0, 1, 2, 3])
        assert second == (first + 1) % 4

    def test_recently_used_protected(self):
        p = ClockPolicy(1, 4, rng=random.Random(0))
        for way in range(4):
            p.on_fill(0, way)
        p.victim(0, [0, 1, 2, 3])  # clears all bits, evict 0, hand at 1
        p.on_hit(0, 1)
        assert p.victim(0, [1, 2, 3]) == 2

    def test_respects_candidates(self):
        p = ClockPolicy(1, 8, rng=random.Random(0))
        for way in range(8):
            p.on_fill(0, way)
        for _ in range(10):
            assert p.victim(0, [5]) == 5

    def test_works_fully_associative(self):
        """Clock is the paper's pick for the FA data array: O(1) state."""
        n = 512
        p = ClockPolicy(1, n, rng=random.Random(0))
        for way in range(n):
            p.on_fill(0, way)
        victims = {p.victim(0, list(range(n))) for _ in range(4)}
        assert victims  # sweeps terminate


class TestRandom:
    def test_uniform_choice(self):
        p = RandomPolicy(1, 4, rng=random.Random(9))
        counts = {w: 0 for w in range(4)}
        for _ in range(4000):
            counts[p.victim(0, [0, 1, 2, 3])] += 1
        assert min(counts.values()) > 800

    def test_single_candidate(self):
        p = RandomPolicy(1, 4, rng=random.Random(0))
        assert p.victim(0, [2]) == 2


class TestFactory:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_constructs_every_policy(self, name):
        kwargs = {"num_threads": 4} if name == "drrip" else {}
        p = make_policy(name, 4, 4, rng=random.Random(0), **kwargs)
        assert p.name == name
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        assert p.victim(0, [0, 1, 2, 3]) in range(4)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("belady", 4, 4)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0, 4)
