"""Tests for the energy model and the energy study driver."""

import pytest

from repro.core.energy_model import (
    dynamic_energy_per_access,
    leakage_power,
    run_energy,
)
from repro.experiments import ExperimentParams
from repro.experiments.energy import format_energy, run_energy_study
from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import run_workload
from repro.workloads.mixes import EXAMPLE_MIX, build_workload


class TestPrimitives:
    def test_dynamic_energy_scales_sublinearly(self):
        small = dynamic_energy_per_access(1 << 22)
        big = dynamic_energy_per_access(1 << 26)
        assert small < big < 16 * small  # sqrt scaling: 4x, not 16x

    def test_leakage_is_linear(self):
        assert leakage_power(2 << 20) == pytest.approx(2 * leakage_power(1 << 20))

    def test_invalid_array(self):
        with pytest.raises(ValueError):
            dynamic_energy_per_access(0)


class TestRunEnergy:
    @pytest.fixture(scope="class")
    def runs(self):
        wl = build_workload(EXAMPLE_MIX, 4000, seed=8)
        out = {}
        for spec in (LLCSpec.conventional(8, "lru"), LLCSpec.reuse(4, 1)):
            out[spec.label] = (
                spec,
                run_workload(SystemConfig(llc=spec), wl),
            )
        return out

    def test_breakdown_components_positive(self, runs):
        for spec, result in runs.values():
            e = run_energy(spec, result)
            assert e.tag_dynamic > 0 and e.leakage > 0 and e.dram > 0
            assert e.total == pytest.approx(e.sllc_total + e.dram)

    def test_reuse_cache_leaks_less(self, runs):
        conv = run_energy(*runs["conv-8MB-lru"])
        rc = run_energy(*runs["RC-4/1"])
        # ~6x less storage -> much less leakage (per unit time; runtimes are
        # close, so the absolute joules follow)
        assert rc.leakage < 0.3 * conv.leakage

    def test_reuse_cache_pays_more_dram_energy(self, runs):
        conv = run_energy(*runs["conv-8MB-lru"])
        rc = run_energy(*runs["RC-4/1"])
        assert rc.dram > conv.dram  # the reload downside

    def test_reuse_cache_wins_total(self, runs):
        conv = run_energy(*runs["conv-8MB-lru"])
        rc = run_energy(*runs["RC-4/1"])
        assert rc.total < conv.total

    def test_unsupported_kind_rejected(self, runs):
        _, result = runs["conv-8MB-lru"]
        with pytest.raises(ValueError):
            run_energy(LLCSpec.ncid(8, 1), result)


class TestDriver:
    def test_structure(self):
        r = run_energy_study(ExperimentParams(n_workloads=1, n_refs=1500))
        assert "conv-8MB-lru" in r and "RC-4/1" in r
        text = format_energy(r)
        assert "total vs baseline" in text
