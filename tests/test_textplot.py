"""Tests for the terminal plotting helpers."""

from repro.metrics.textplot import bar_chart, line_plot, sparkline


class TestBarChart:
    def test_renders_all_labels_and_values(self):
        chart = bar_chart([("a", 1.0), ("bb", 2.0)], width=20)
        assert "a " in chart and "bb" in chart
        assert "1.000" in chart and "2.000" in chart

    def test_longer_value_longer_bar(self):
        chart = bar_chart([("a", 1.0), ("b", 2.0)], width=20)
        rows = chart.splitlines()
        assert rows[0].count("█") < rows[1].count("█")

    def test_baseline_marker(self):
        chart = bar_chart([("a", 0.5), ("b", 1.5)], width=20, baseline=1.0)
        assert "┊" in chart or "│" in chart

    def test_title_and_empty(self):
        assert bar_chart([], title="t") == "t"
        assert bar_chart([("x", 1.0)], title="Top").startswith("Top")

    def test_handles_equal_values(self):
        chart = bar_chart([("a", 1.0), ("b", 1.0)])
        assert chart  # no division-by-zero


class TestLinePlot:
    def test_renders_series_glyphs(self):
        plot = line_plot({"s1": [(0, 0), (1, 1)], "s2": [(0, 1), (1, 0)]})
        assert "o" in plot and "x" in plot
        assert "o=s1" in plot and "x=s2" in plot

    def test_axis_labels(self):
        plot = line_plot({"s": [(0, 0.0), (10, 2.0)]}, y_fmt="{:.1f}")
        assert "2.0" in plot and "0.0" in plot

    def test_empty(self):
        assert line_plot({}, title="t") == "t"

    def test_flat_series(self):
        assert line_plot({"s": [(0, 1.0), (1, 1.0)]})


class TestSparkline:
    def test_length_bounded(self):
        s = sparkline(range(1000), width=50)
        assert len(s) <= 52

    def test_monotone_input_monotone_blocks(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8], width=9)
        assert s[0] <= s[-1]

    def test_empty(self):
        assert sparkline([]) == ""
