"""Tests for :mod:`repro.service`: the sharded cache server with
reuse-based admission (store semantics, sharding, protocol, concurrency,
graceful shutdown, load generation)."""

import asyncio
import json

import pytest

from repro.service import (
    CacheClient,
    CacheServer,
    ReuseStore,
    ServerError,
    ShardedStore,
    merge_snapshots,
    quantile,
    replay_store,
    value_of,
)
from repro.service.cli import build_service_parser, run_service_benchmark
from repro.service.stats import ShardStats
from repro.workloads.mixes import EXAMPLE_MIX, build_workload


def run(coro):
    """Drive one async test body (no pytest-asyncio in the toolchain)."""
    return asyncio.run(asyncio.wait_for(coro, 60))


# ---------------------------------------------------------------------------
# store: selective allocation semantics
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_first_get_misses_and_tags(self):
        s = ReuseStore(data_capacity=8)
        assert s.get("k") is None
        assert s.is_tracked("k") and not s.contains("k")
        assert s.stats.misses == 1

    def test_set_after_single_access_is_declined(self):
        s = ReuseStore(data_capacity=8)
        s.get("k")
        assert s.set("k", b"v") is False
        assert not s.contains("k")
        assert s.stats.tag_only_sets == 1

    def test_second_get_arms_admission(self):
        s = ReuseStore(data_capacity=8)
        s.get("k")          # first access: tag only
        s.set("k", b"v")    # declined
        s.get("k")          # reuse detected
        assert s.set("k", b"v") is True
        assert s.get("k") == b"v"
        assert s.stats.reuse_admissions == 1
        assert s.stats.hits == 1

    def test_set_with_no_prior_get_tags_key(self):
        s = ReuseStore(data_capacity=8)
        assert s.set("k", b"v") is False  # first access via SET: tag only
        s.get("k")                        # second access: reuse
        assert s.set("k", b"v") is True

    def test_admit_always_stores_immediately(self):
        s = ReuseStore(data_capacity=8, admission="always")
        assert s.set("k", b"v") is True
        assert s.get("k") == b"v"

    def test_update_in_place(self):
        s = ReuseStore(data_capacity=8)
        s.get("k"); s.get("k")
        s.set("k", b"old")
        assert s.set("k", b"newer") is True
        assert s.get("k") == b"newer"
        assert s.stats.bytes_stored == len(b"newer")

    def test_delete_drops_tag_and_value(self):
        s = ReuseStore(data_capacity=8)
        s.get("k"); s.get("k"); s.set("k", b"v")
        assert s.delete("k") is True
        assert not s.contains("k") and not s.is_tracked("k")
        assert s.delete("k") is False
        # history gone: the key is back to square one
        assert s.set("k", b"v") is False

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReuseStore(data_capacity=0)
        with pytest.raises(ValueError):
            ReuseStore(data_capacity=16, tag_capacity=8)
        with pytest.raises(ValueError):
            ReuseStore(data_capacity=8, admission="lru")


class TestEviction:
    def _admit(self, store, key, payload=b"x"):
        store.get(key); store.get(key)
        assert store.set(key, payload) is True

    def test_clock_eviction_under_capacity_pressure(self):
        s = ReuseStore(data_capacity=4, tag_capacity=64)
        for i in range(10):
            self._admit(s, f"k{i}")
        assert len(s) == 4
        assert s.stats.data_evictions == 6
        stored = [f"k{i}" for i in range(10) if s.contains(f"k{i}")]
        assert len(stored) == 4

    def test_data_eviction_keeps_reuse_history(self):
        # paper: DataRepl demotes S -> TO, so the next fetch re-admits
        s = ReuseStore(data_capacity=1, tag_capacity=16)
        self._admit(s, "a")
        self._admit(s, "b")     # evicts a's value, a stays tracked+reused
        assert not s.contains("a") and s.is_tracked("a")
        assert s.get("a") is None           # miss (read-through refetch)
        assert s.set("a", b"x") is True     # re-admitted on the spot
        assert s.stats.data_evictions == 2

    def test_tag_eviction_frees_data_too(self):
        # 4 tags total, 4 data slots: force tag-directory conflict misses
        s = ReuseStore(data_capacity=4, tag_capacity=4, tag_assoc=4)
        for i in range(16):
            s.get(f"k{i}")
        assert s.stats.tag_evictions > 0
        tracked = sum(s.is_tracked(f"k{i}") for i in range(16))
        assert tracked == 4

    def test_bytes_accounting_across_evictions(self):
        s = ReuseStore(data_capacity=2, tag_capacity=32)
        for i in range(6):
            self._admit(s, f"k{i}", payload=bytes(10))
        assert s.stats.bytes_stored == 2 * 10
        assert s.stats.bytes_written == 6 * 10


# ---------------------------------------------------------------------------
# sharding
# ---------------------------------------------------------------------------


class TestSharding:
    def test_routing_is_stable_across_instances(self):
        a = ShardedStore(num_shards=8, data_capacity=64)
        b = ShardedStore(num_shards=8, data_capacity=1024, admission="always")
        keys = [f"user:{i}" for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_keys_spread_over_all_shards(self):
        st = ShardedStore(num_shards=4, data_capacity=64)
        used = {st.shard_of(f"key-{i}") for i in range(200)}
        assert used == {0, 1, 2, 3}

    def test_operations_land_on_owning_shard(self):
        st = ShardedStore(num_shards=4, data_capacity=64)
        st.get("k"); st.get("k")
        assert st.set("k", b"v") is True
        assert st.shard_for("k").contains("k")
        others = [s for i, s in enumerate(st.shards) if i != st.shard_of("k")]
        assert all(len(s) == 0 for s in others)
        assert len(st) == 1

    def test_stats_aggregate_sums_shards(self):
        st = ShardedStore(num_shards=2, data_capacity=16)
        for i in range(20):
            st.get(f"k{i}")
        snap = st.stats_snapshot()
        assert snap["total"]["misses"] == 20
        assert sum(s["misses"] for s in snap["shards"]) == 20
        assert len(snap["shards"]) == 2

    def test_capacity_split_validated(self):
        with pytest.raises(ValueError):
            ShardedStore(num_shards=8, data_capacity=4)


# ---------------------------------------------------------------------------
# stats helpers
# ---------------------------------------------------------------------------


class TestStats:
    def test_quantile_interpolates(self):
        assert quantile([4.0, 1.0, 3.0, 2.0], 0.5) == pytest.approx(2.5)
        assert quantile([], 0.99) == 0.0
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_latency_reservoir_bounded_and_deterministic(self):
        # reservoir sampling: occupancy is capped, every offer is counted,
        # and the seeded RNG makes the retained set reproducible
        a = ShardStats(latency_window=4, seed=7)
        b = ShardStats(latency_window=4, seed=7)
        for v in range(100):
            a.record_latency(float(v))
            b.record_latency(float(v))
        assert len(a.latencies) == 4
        assert a.latency_count == 100
        assert a.latencies == b.latencies
        # a different seed retains a different sample (overwhelmingly likely
        # over 100 offers into 4 slots)
        c = ShardStats(latency_window=4, seed=8)
        for v in range(100):
            c.record_latency(float(v))
        assert c.latencies != a.latencies

    def test_latency_reservoir_snapshot_keys(self):
        st = ShardStats(latency_window=4)
        for v in (1.0, 2.0):
            st.record_latency(v)
        snap = st.snapshot()
        assert snap["reservoir_occupancy"] == 2
        assert snap["reservoir_capacity"] == 4
        assert snap["latency_samples"] == 2

    def test_merge_snapshots(self):
        a, b = ShardStats(), ShardStats()
        a.hits, a.misses = 3, 1
        b.hits, b.misses = 1, 3
        b.record_latency(0.5)
        total = merge_snapshots([a.snapshot(), b.snapshot()])
        assert total["hits"] == 4 and total["misses"] == 4
        assert total["hit_rate"] == pytest.approx(0.5)
        assert total["p99_s"] == pytest.approx(0.5)

    def test_busy_seconds_accumulate_and_merge(self):
        a, b = ShardStats(), ShardStats()
        for v in (0.1, 0.2):
            a.record_latency(v)
        b.record_latency(0.5)
        assert a.snapshot()["busy_s"] == pytest.approx(0.3)
        total = merge_snapshots([a.snapshot(), b.snapshot()])
        assert total["busy_s"] == pytest.approx(0.8)


# ---------------------------------------------------------------------------
# server + client over TCP
# ---------------------------------------------------------------------------


async def _started_server(**kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("data_capacity", 64)
    server_opts = {
        k: kwargs.pop(k)
        for k in ("max_connections", "request_timeout")
        if k in kwargs
    }
    store = ShardedStore(**kwargs)
    server = CacheServer(store, port=0, **server_opts)
    await server.start()
    return server


class TestServerProtocol:
    def test_get_set_del_roundtrip(self):
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    assert await c.ping()
                    assert await c.get("k") is None      # miss + tag
                    assert await c.set("k", b"v1") is False  # TAGGED
                    assert await c.get("k") is None      # reuse detected
                    assert await c.set("k", b"v1") is True   # STORED
                    assert await c.get("k") == b"v1"
                    assert await c.delete("k") is True
                    assert await c.delete("k") is False
            finally:
                await server.stop()
        run(body())

    def test_binary_values_with_newlines(self):
        async def body():
            server = await _started_server(admission="always")
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    payload = b"a\nb\r\nc\x00d" * 11
                    await c.set("bin", payload)
                    assert await c.get("bin") == payload
            finally:
                await server.stop()
        run(body())

    def test_malformed_requests_keep_connection_open(self):
        async def body():
            server = await _started_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"FROB key\n")
                assert (await reader.readline()).startswith(b"ERR")
                writer.write(b"SET toofew\n")
                assert (await reader.readline()).startswith(b"ERR")
                writer.write(b"PING\n")          # still usable
                assert await reader.readline() == b"PONG\n"
                writer.close()
            finally:
                await server.stop()
        run(body())

    def test_stats_command_reports_per_shard(self):
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    await c.get("x")
                    await c.get("x")
                    await c.set("x", b"v")
                    stats = await c.stats()
            finally:
                await server.stop()
            assert stats["num_shards"] == 2
            total = stats["total"]
            assert total["misses"] == 2
            assert total["reuse_admissions"] == 1
            assert total["latency_samples"] >= 3
            for shard in stats["shards"]:
                for field in ("hits", "misses", "reuse_admissions",
                              "data_evictions", "tag_evictions",
                              "p50_s", "p99_s", "busy_s"):
                    assert field in shard
            assert total["busy_s"] > 0.0
            process = stats["process"]
            assert process["pid"] > 0
            assert process["cpu_s"] > 0.0
            assert process["peak_rss_kb"] > 0
        run(body())

    def test_connection_limit_rejects_excess_clients(self):
        async def body():
            server = await _started_server(max_connections=1)
            try:
                r1, w1 = await asyncio.open_connection("127.0.0.1", server.port)
                w1.write(b"PING\n")
                assert await r1.readline() == b"PONG\n"
                r2, w2 = await asyncio.open_connection("127.0.0.1", server.port)
                assert (await r2.readline()).startswith(b"ERR busy")
                w1.close(); w2.close()
            finally:
                await server.stop()
        run(body())


class TestConcurrentClients:
    def test_two_clients_interleaved_traffic(self):
        async def body():
            server = await _started_server(num_shards=4, data_capacity=256,
                                           admission="always")
            keys = [f"shared:{i}" for i in range(40)]

            async def worker(client):
                ok = 0
                for _ in range(3):
                    for key in keys:
                        value = await client.get(key)
                        if value is None:
                            await client.set(key, b"p" * 16)
                        else:
                            assert value == b"p" * 16
                            ok += 1
                return ok

            try:
                async with CacheClient("127.0.0.1", server.port) as c1, \
                           CacheClient("127.0.0.1", server.port) as c2:
                    hits = await asyncio.gather(worker(c1), worker(c2))
                    stats = await c1.stats()
            finally:
                await server.stop()
            # both clients observed hits and the server saw all the traffic
            assert all(h > 0 for h in hits)
            assert stats["total"]["gets"] == 2 * 3 * len(keys)
            assert stats["stored_entries"] == len(keys)
        run(body())


class TestGracefulShutdown:
    def test_stop_drains_inflight_request(self):
        async def body():
            server = await _started_server(admission="always",
                                           request_timeout=10.0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            # start a SET but hold back the value body: request is in flight
            writer.write(b"SET slow 5\n")
            await writer.drain()
            while server.inflight == 0:     # wait until the server parsed it
                await asyncio.sleep(0.001)
            stopper = asyncio.ensure_future(server.stop(drain_timeout=5.0))
            await asyncio.sleep(0.05)       # stop() is now draining
            assert not stopper.done()
            writer.write(b"hello\n")        # complete the request
            await writer.drain()
            assert await reader.readline() == b"STORED\n"  # answered, not cut
            await stopper
            assert server.inflight == 0
            # new connections are refused after shutdown
            with pytest.raises((ConnectionError, OSError)):
                r, w = await asyncio.open_connection("127.0.0.1", server.port)
                w.close()
            writer.close()
        run(body())

    def test_stop_closes_idle_connections(self):
        async def body():
            server = await _started_server()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"PING\n")
            assert await reader.readline() == b"PONG\n"
            await server.stop(drain_timeout=1.0)
            assert await reader.readline() == b""   # EOF: server closed it
            assert server.connections == 0
        run(body())

    def test_quit_closes_only_its_own_connection(self):
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    assert await c.quit() is True
                    # the server hung up that connection, not the server:
                    # the pool dials a fresh one for the next request
                    assert await c.ping() is True
            finally:
                await server.stop()
        run(body())


class TestClient:
    def test_retry_reaches_server_started_late(self):
        async def body():
            server = await _started_server()
            port = server.port
            await server.stop()
            client = CacheClient("127.0.0.1", port,
                                 max_retries=8, backoff=0.05)

            async def start_later():
                await asyncio.sleep(0.15)
                late = CacheServer(ShardedStore(num_shards=2,
                                                data_capacity=64), port=port)
                await late.start()
                return late

            starter = asyncio.ensure_future(start_later())
            try:
                assert await client.ping()   # retries until the server is up
            finally:
                await client.close()
                await (await starter).stop()
        run(body())

    def test_server_errors_are_not_retried(self):
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError):
                        await c._request(b"FROB x\n")
            finally:
                await server.stop()
        run(body())


# ---------------------------------------------------------------------------
# load generation + benchmark entry points
# ---------------------------------------------------------------------------


class TestLoadgen:
    def test_value_of_is_deterministic(self):
        assert value_of(123) == value_of(123)
        assert len(value_of(123, 64)) == 64
        assert value_of(123) != value_of(124)

    def test_reuse_admission_beats_admit_always_when_downsized(self):
        # the acceptance comparison: same data capacity, reuse admission
        # filters one-touch streams and wins on hit rate
        wl = build_workload(EXAMPLE_MIX, n_refs=4000, seed=2013, scale=32)
        rates = {}
        for admission in ("reuse", "always"):
            store = ShardedStore(num_shards=4, data_capacity=512,
                                 admission=admission, seed=1)
            rates[admission] = replay_store(store, wl).hit_rate
        assert rates["reuse"] > rates["always"]

    def test_replay_matches_server_accounting(self):
        async def body():
            server = await _started_server(num_shards=2, data_capacity=128)
            wl = build_workload(["gcc"], n_refs=400, seed=7, scale=32)
            from repro.service import run_load
            result = await run_load("127.0.0.1", server.port, wl,
                                    sample_every=2)
            await server.stop()
            return result
        result = run(body())
        assert result.gets == 400
        assert result.ops == result.gets + result.sets
        total = result.server_stats["total"]
        assert total["gets"] == result.gets
        assert total["hits"] == result.hits
        assert result.latencies_s and result.throughput > 0


class TestServiceCLI:
    def test_parser_defaults(self):
        args = build_service_parser().parse_args(["serve"])
        assert args.shards == 4 and args.admission == "reuse"
        args = build_service_parser().parse_args(["bench-service"])
        assert args.data_capacity == 512  # downsized regime by default

    def test_main_dispatches_service_commands(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "bench-service" in out

    def test_bench_service_writes_comparison(self, tmp_path, capsys):
        from repro.__main__ import main
        out_json = tmp_path / "bench.json"
        code = main(["bench-service", "--refs", "300", "--shards", "2",
                     "--data-capacity", "128", "--json", str(out_json)])
        assert code == 0
        assert "hit-rate gain" in capsys.readouterr().out
        data = json.loads(out_json.read_text())
        assert set(data) >= {"reuse", "always", "hit_rate_gain"}
        for mode in ("reuse", "always"):
            assert data[mode]["server_total"]["gets"] > 0

    def test_run_service_benchmark_overrides(self):
        result = run_service_benchmark(refs=200, shards=2,
                                       data_capacity=64, mix=["gcc", "mcf"])
        assert result["cores"] == 2
        assert result["reuse"]["admission"] == "reuse"


class TestStoreExtensionsForCluster:
    def test_force_set_bypasses_admission(self):
        s = ReuseStore(data_capacity=8)  # reuse admission by default
        assert s.set("k", b"declined") is False  # one-touch SET only tags
        assert s.force_set("k", b"adopted") is True
        assert s.get("k") == b"adopted"

    def test_keys_sorted_across_shards(self):
        store = ShardedStore(num_shards=4, data_capacity=64,
                             admission="always")
        for i in (3, 1, 2, 0):
            store.set(f"k{i}", b"v")
        assert store.keys() == ["k0", "k1", "k2", "k3"]

    def test_evict_listener_sees_data_and_tag_evictions(self):
        events = []
        s = ReuseStore(data_capacity=2, tag_capacity=8, admission="always")
        s.evict_listener = lambda key, kind: events.append((key, kind))
        for i in range(4):
            s.set(f"k{i}", b"v")
        kinds = {kind for _, kind in events}
        assert events and kinds <= {"data", "tag"}
        assert "data" in kinds  # capacity pressure evicted stored values

    def test_sharded_listener_installs_on_every_shard(self):
        events = []
        store = ShardedStore(num_shards=2, data_capacity=4,
                             admission="always")
        store.set_evict_listener(lambda key, kind: events.append(key))
        for i in range(12):
            store.set(f"k{i}", b"v")
        assert len(events) == 12 - len(store)


class TestFinalStatsFlush:
    def test_flush_prints_and_persists(self, tmp_path, capsys):
        from repro.service.cli import _final_stats_flush, build_service_parser

        out_json = tmp_path / "final.json"
        args = build_service_parser().parse_args(
            ["serve", "--final-stats-json", str(out_json)]
        )

        async def body():
            server = await _started_server(admission="always")
            client = CacheClient("127.0.0.1", server.port)
            await client.set("k", b"v")
            await client.get("k")
            await client.close()
            await server.stop()
            return server

        server = run(body())
        _final_stats_flush(server, args)
        out = capsys.readouterr().out
        assert "final stats" in out and str(out_json) in out
        data = json.loads(out_json.read_text())
        assert data["total"]["hits"] == 1
        assert data["stored_entries"] == 1
        assert data["process"]["pid"] > 0

    def test_serve_parser_accepts_final_stats_json(self):
        args = build_service_parser().parse_args(
            ["serve", "--final-stats-json", "x.json"]
        )
        assert args.final_stats_json == "x.json"


class TestBenchServiceStatsJson:
    def test_stats_json_written_alongside_comparison(self, tmp_path, capsys):
        from repro.__main__ import main

        stats_json = tmp_path / "stats.json"
        code = main(["bench-service", "--refs", "200", "--shards", "2",
                     "--data-capacity", "64",
                     "--stats-json", str(stats_json)])
        assert code == 0
        capsys.readouterr()
        data = json.loads(stats_json.read_text())
        assert set(data) == {"reuse", "always"}
        for mode in ("reuse", "always"):
            assert data[mode]["total"]["gets"] > 0

    def test_benchmark_result_carries_server_stats(self):
        result = run_service_benchmark(refs=150, shards=2, data_capacity=64,
                                       mix=["gcc"])
        assert set(result["server_stats"]) == {"reuse", "always"}
        assert result["server_stats"]["reuse"]["total"]["gets"] > 0


class TestReplayWithClient:
    def test_shared_client_is_not_closed(self):
        from repro.service.loadgen import replay_with_client

        async def body():
            server = await _started_server(admission="always")
            client = CacheClient("127.0.0.1", server.port)
            wl = build_workload(["gcc"], n_refs=200, seed=7, scale=32)
            result = await replay_with_client(client, wl, sample_every=2)
            # the caller keeps ownership: the client still works
            await client.set("after", b"v")
            assert await client.get("after") == b"v"
            await client.close()
            await server.stop()
            return result

        result = run(body())
        assert result.gets == 200
        assert result.ops == result.gets + result.sets


class TestReplayInterleaved:
    def test_matches_the_in_process_interleave(self):
        """Deterministic replay sees the same hit pattern as replay_store."""
        from repro.service.loadgen import replay_interleaved, replay_store
        from repro.service.store import ReuseStore

        wl = build_workload(["gcc", "mcf"], n_refs=300, seed=7, scale=32)
        baseline = replay_store(
            ReuseStore(data_capacity=64, tag_capacity=256), wl
        )

        async def body():
            server = await _started_server(
                num_shards=1, data_capacity=64, tag_capacity=256,
                admission="reuse",
            )
            client = CacheClient("127.0.0.1", server.port)
            result = await replay_interleaved(client, wl, sample_every=2)
            # the caller keeps ownership: the client still works (two
            # GET misses arm the tag, then the SET is admitted)
            await client.get("after")
            await client.get("after")
            await client.set("after", b"v")
            assert await client.get("after") == b"v"
            await client.close()
            await server.stop()
            return result

        result = run(body())
        assert result.gets == baseline.gets == 600
        assert result.hits == baseline.hits
        assert result.sets_stored == baseline.sets_stored
        assert result.sets_tagged == baseline.sets_tagged
        assert result.latencies_s  # sampled

    def test_is_deterministic_across_runs(self):
        from repro.service.loadgen import replay_interleaved

        wl = build_workload(["gcc"], n_refs=200, seed=7, scale=32)

        async def one():
            server = await _started_server(admission="reuse")
            client = CacheClient("127.0.0.1", server.port)
            result = await replay_interleaved(client, wl)
            await client.close()
            await server.stop()
            return result

        a, b = run(one()), run(one())
        assert (a.hits, a.sets_stored, a.sets_tagged) == \
               (b.hits, b.sets_stored, b.sets_tagged)
