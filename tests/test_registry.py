"""Tests for the experiment registry and the ``repro run`` front door."""

import json

import pytest

from repro.__main__ import main
from repro.experiments import registry
from repro.experiments.common import ExperimentParams
from repro.runner import ResultCache, Runner, cell_key

TINY = ["--workloads", "1", "--refs", "1200"]


class TestRegistry:
    def test_every_experiment_enumerable(self):
        names = registry.names()
        assert len(names) == len(set(names)) >= 26
        for name in names:
            spec = registry.get(name)
            assert spec.name == name
            assert spec.title
            assert callable(spec.run) and callable(spec.format)

    def test_all_specs_preserves_order(self):
        assert tuple(s.name for s in registry.all_specs()) == registry.names()

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="fig7"):
            registry.get("fig99")

    def test_duplicate_registration_rejected(self):
        spec = registry.get("fig7")
        with pytest.raises(ValueError, match="twice"):
            registry.register(spec)

    def test_analytical_spec_executes_without_params(self):
        result = registry.get("table2").execute()
        assert "conv-8MB" in result

    def test_ablation_formatters_are_distinct(self):
        result = {"a": 1.0}
        texts = {
            name: registry.get(name).format(result)
            for name in ("ablation-tag", "ablation-data", "ablation-alloc",
                         "ablation-threshold")
        }
        assert len(set(texts.values())) == 4

    def test_cell_enumerator_matches_driver(self, tmp_path):
        # the fig7 plan preview must enumerate exactly the cells the
        # driver executes — including the record_generations flag
        params = ExperimentParams(n_workloads=1, n_refs=1200)
        spec = registry.get("fig7")
        runner = Runner(cache=ResultCache(tmp_path))
        spec.execute(params, runner=runner)
        cells = spec.cells(params)
        assert len(cells) == runner.stats.total
        assert all(
            runner.cache.contains(cell_key(c, runner._fingerprint))
            for c in cells
        )


class TestRunCLI:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out

    def test_run_round_trips_a_registered_spec(self, capsys):
        assert main(["run", "table3", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "[cells:" in out

    def test_run_unknown_name_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig99", "--no-cache"])

    def test_run_simulation_with_cache(self, tmp_path, capsys):
        argv = ["run", "fig1a", *TINY, "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "3 run, 0 cached" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 run, 3 cached" in second

    def test_stats_json_and_json_export(self, tmp_path, capsys):
        stats_file = tmp_path / "stats.json"
        json_file = tmp_path / "result.json"
        assert main([
            "run", "fig1a", *TINY, "--cache-dir", str(tmp_path / "cache"),
            "--stats-json", str(stats_file), "--json", str(json_file),
        ]) == 0
        capsys.readouterr()
        stats = json.loads(stats_file.read_text())
        assert stats["run"] == 3 and stats["cached"] == 0
        assert stats["hit_rate"] == 0.0
        assert "fig1a" in json.loads(json_file.read_text())

    def test_force_recomputes(self, tmp_path, capsys):
        argv = ["run", "fig1a", *TINY, "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--force"]) == 0
        assert "3 run, 0 cached" in capsys.readouterr().out

    def test_plan_reports_cache_state_without_running(self, tmp_path, capsys):
        plan = ["run", "fig7", *TINY, "--cache-dir", str(tmp_path), "--plan"]
        assert main(plan) == 0
        out = capsys.readouterr().out
        assert "8 cell(s), 0 already cached" in out
        assert main(["run", "fig7", *TINY, "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(plan) == 0
        assert "8 cell(s), 8 already cached" in capsys.readouterr().out

    def test_legacy_spelling_forwards_with_deprecation(self, capsys):
        assert main(["fig1a", *[a for a in TINY]]) == 0
        captured = capsys.readouterr()
        assert "DEPRECATED" in captured.err
        assert "live" in captured.out.lower()


class TestFromEnvValidation:
    @pytest.mark.parametrize("var", ["REPRO_WORKLOADS", "REPRO_REFS",
                                     "REPRO_SCALE"])
    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_zero_or_negative_rejected(self, monkeypatch, var, bad):
        monkeypatch.setenv(var, bad)
        with pytest.raises(ValueError, match=var):
            ExperimentParams.from_env()

    def test_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", "many")
        with pytest.raises(ValueError, match="REPRO_REFS"):
            ExperimentParams.from_env()

    def test_seed_may_be_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "0")
        assert ExperimentParams.from_env().seed == 0

    def test_valid_values_pass(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "2")
        monkeypatch.setenv("REPRO_REFS", "1500")
        p = ExperimentParams.from_env()
        assert (p.n_workloads, p.n_refs) == (2, 1500)
