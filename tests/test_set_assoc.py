"""Tests for the generic TagStore."""

import pytest

from repro.cache.set_assoc import TagStore


@pytest.fixture
def store():
    return TagStore(num_sets=4, assoc=2)


class TestGeometry:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            TagStore(3, 2)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            TagStore(4, 0)

    def test_set_of_uses_low_bits(self, store):
        assert store.set_of(0) == 0
        assert store.set_of(5) == 1
        assert store.set_of(7) == 3


class TestPlacement:
    def test_install_and_find(self, store):
        store.install(1, 0, 0x41)
        assert store.find(1, 0x41) == 0
        assert store.lookup(0x41) == (1, 0)

    def test_miss(self, store):
        assert store.find(0, 0x100) is None

    def test_free_way_tracking(self, store):
        assert store.free_way(2) == 0
        store.install(2, 0, 2)
        assert store.free_way(2) == 1
        store.install(2, 1, 6)
        assert store.free_way(2) is None

    def test_install_into_occupied_way_rejected(self, store):
        store.install(0, 0, 0)
        with pytest.raises(ValueError):
            store.install(0, 0, 4)

    def test_evict_returns_address(self, store):
        store.install(0, 1, 8)
        assert store.evict(0, 1) == 8
        assert store.find(0, 8) is None
        assert store.free_way(0) is not None

    def test_evict_empty_way_rejected(self, store):
        with pytest.raises(ValueError):
            store.evict(0, 0)

    def test_valid_ways(self, store):
        assert store.valid_ways(3) == []
        store.install(3, 1, 3)
        assert store.valid_ways(3) == [1]

    def test_occupancy_and_residents(self, store):
        addrs = [0, 4, 1, 5]
        for a in addrs:
            s = store.set_of(a)
            store.install(s, store.free_way(s), a)
        assert store.occupancy() == 4
        assert sorted(store.resident_addrs()) == sorted(addrs)
