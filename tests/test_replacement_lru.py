"""Tests for LRU replacement and its insertion-policy variants."""

import random

import pytest

from repro.replacement import BIPPolicy, DIPPolicy, LIPPolicy, LRUPolicy


@pytest.fixture
def lru():
    return LRUPolicy(num_sets=2, assoc=4, rng=random.Random(1))


class TestLRU:
    def test_victim_is_least_recent(self, lru):
        for way in range(4):
            lru.on_fill(0, way)
        assert lru.victim(0, [0, 1, 2, 3]) == 0

    def test_hit_promotes(self, lru):
        for way in range(4):
            lru.on_fill(0, way)
        lru.on_hit(0, 0)
        assert lru.victim(0, [0, 1, 2, 3]) == 1

    def test_candidate_filtering(self, lru):
        for way in range(4):
            lru.on_fill(0, way)
        assert lru.victim(0, [2, 3]) == 2

    def test_sets_are_independent(self, lru):
        lru.on_fill(0, 0)
        lru.on_fill(1, 3)
        assert lru.victim(1, [0, 1, 2, 3]) in (0, 1, 2)  # way 3 is MRU in set 1

    def test_invalidate_makes_way_oldest(self, lru):
        for way in range(4):
            lru.on_fill(0, way)
        lru.on_invalidate(0, 2)
        assert lru.victim(0, [0, 1, 2, 3]) == 2

    def test_recency_order(self, lru):
        for way in (2, 0, 3, 1):
            lru.on_fill(0, way)
        assert lru.recency_order(0) == [2, 0, 3, 1]

    def test_empty_candidates_rejected(self, lru):
        with pytest.raises(ValueError):
            lru.victim(0, [])

    def test_fill_at_lru(self, lru):
        for way in range(4):
            lru.on_fill(0, way)
        lru.fill_at_lru(0, 3)
        assert lru.victim(0, [0, 1, 2, 3]) == 3


class TestLIP:
    def test_fills_land_at_lru(self):
        lip = LIPPolicy(1, 4, rng=random.Random(0))
        lip.on_fill(0, 0)
        lip.on_hit(0, 0)
        lip.on_fill(0, 1)  # LRU insert: way 1 is oldest despite being newest fill
        assert lip.victim(0, [0, 1]) == 1

    def test_hit_still_promotes(self):
        lip = LIPPolicy(1, 4, rng=random.Random(0))
        lip.on_fill(0, 0)
        lip.on_fill(0, 1)
        lip.on_hit(0, 1)
        assert lip.victim(0, [0, 1]) == 0


class TestBIP:
    def test_mostly_lru_inserts(self):
        rng = random.Random(7)
        bip = BIPPolicy(1, 2, rng=rng)
        lru_inserts = 0
        trials = 2000
        for _ in range(trials):
            bip.on_fill(0, 0)  # reference point
            bip.on_hit(0, 1)  # make way 1 MRU
            bip.on_fill(0, 0)
            if bip.victim(0, [0, 1]) == 0:
                lru_inserts += 1
        # epsilon = 1/32: ~97% of fills go to the LRU position
        assert lru_inserts / trials > 0.9
        assert lru_inserts / trials < 1.0


class TestDIP:
    def test_leader_roles_partition_sets(self):
        dip = DIPPolicy(64, 4, rng=random.Random(0))
        roles = {dip._role(s) for s in range(64)}
        assert roles == {"lru", "bip", "follower"}

    def test_psel_moves_on_leader_misses(self):
        dip = DIPPolicy(64, 4, rng=random.Random(0))
        start = dip._psel
        dip.on_miss(0)  # set 0 is an LRU leader
        assert dip._psel == start + 1
        dip.on_miss(1)  # set 1 is a BIP leader
        dip.on_miss(1)
        assert dip._psel == start - 1

    def test_followers_follow_psel(self):
        dip = DIPPolicy(64, 4, rng=random.Random(0))
        dip._psel = dip._psel_max  # LRU has been missing a lot -> use BIP
        dip.on_fill(2, 0)  # set 2 is a follower
        dip.on_hit(2, 1)
        dip.on_fill(2, 0)
        # BIP inserts at LRU almost always
        assert dip.victim(2, [0, 1]) == 0
