"""Tests for stack-distance analysis of traces."""

import numpy as np
import pytest

from repro.workloads.analysis import hit_ratio_curve, reuse_profile, stack_distances


class TestStackDistances:
    def test_cold_accesses(self):
        d = stack_distances([1, 2, 3])
        assert d.tolist() == [-1, -1, -1]

    def test_immediate_reuse(self):
        d = stack_distances([1, 1])
        assert d.tolist() == [-1, 0]

    def test_classic_example(self):
        # a b c b a : b sees {c}=1, a sees {b,c}=2
        d = stack_distances([1, 2, 3, 2, 1])
        assert d.tolist() == [-1, -1, -1, 1, 2]

    def test_distance_counts_distinct_not_total(self):
        # a b b b a : a's distance is 1 (only b in between)
        d = stack_distances([1, 2, 2, 2, 1])
        assert d[-1] == 1

    def test_cyclic_sweep_distance_equals_footprint(self):
        trace = list(range(8)) * 3
        d = stack_distances(trace)
        assert all(x == 7 for x in d[8:])

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 12, 200).tolist()
        d = stack_distances(trace)
        last = {}
        for t, a in enumerate(trace):
            if a in last:
                expected = len(set(trace[last[a] + 1:t]))
                assert d[t] == expected
            else:
                assert d[t] == -1
            last[a] = t


class TestReuseProfile:
    def test_summary_fields(self):
        p = reuse_profile([1, 2, 1, 2, 3])
        assert p["n_accesses"] == 5
        assert p["cold"] == 3
        assert p["footprint"] == 3
        assert sum(p["counts"]) == 2

    def test_synthetic_generator_has_reuse_structure(self):
        """The SPEC-like generator produces the paper's three bands: tiny
        distances (hot), private-cache-sized (warm), and beyond-L2 (mid)."""
        from repro.workloads import SPEC_PROFILES, generate_trace

        trace = generate_trace(SPEC_PROFILES["gcc"], 20_000, seed=1, scale=32)
        d = stack_distances(trace.addrs)
        warm = d[d >= 0]
        l1, l2 = 16, 128  # scaled private capacities
        assert (warm < l1).sum() > 0.4 * len(warm)  # hot band
        assert ((warm >= l1) & (warm < l2)).sum() > 0  # warm band
        assert (warm >= l2).sum() > 0  # SLLC band


class TestHitRatioCurve:
    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 64, 2000).tolist()
        curve = hit_ratio_curve(trace, [1, 8, 32, 128])
        vals = list(curve.values())
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_full_capacity_captures_all_reuse(self):
        trace = [1, 2, 3] * 10
        curve = hit_ratio_curve(trace, [4])
        assert curve[4] == pytest.approx(27 / 30)

    def test_empty(self):
        assert hit_ratio_curve([], [4]) == {4: 0.0}

    def test_agrees_with_stack_distances(self):
        trace = [1, 2, 1, 3, 2, 1]
        d = stack_distances(trace)
        curve = hit_ratio_curve(trace, [2])
        expected = sum(1 for x in d if 0 <= x < 2) / len(trace)
        assert curve[2] == pytest.approx(expected)
