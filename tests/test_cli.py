"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import _jsonable, build_parser, main
from repro.experiments import registry


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.experiment == "fig5"
        assert args.workloads > 0 and args.refs > 0

    def test_overrides(self):
        args = build_parser().parse_args(
            ["table6", "--workloads", "2", "--refs", "999", "--seed", "3"]
        )
        assert (args.workloads, args.refs, args.seed) == (2, 999, 3)


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_every_paper_artifact(self):
        paper_artifacts = {
            "fig1a", "fig1b", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "table2", "table3", "table5",
            "table6", "bandwidth",
        }
        assert paper_artifacts <= set(registry.names())
        extensions = {"zoo", "energy", "traffic", "opt", "prefetch", "robustness", "mlp"}
        assert extensions <= set(registry.names())
        ablations = {"ablation-tag", "ablation-data", "ablation-alloc",
                     "ablation-threshold"}
        assert ablations <= set(registry.names())

    def test_run_analytic_experiment(self, capsys):
        assert main(["table2"]) == 0
        assert "69888" in capsys.readouterr().out.replace(" ", "")

    @pytest.mark.parametrize("name", ["fig6", "table6"])
    def test_run_simulation_experiment(self, name, capsys):
        assert main([name, "--workloads", "1", "--refs", "1200"]) == 0
        assert "speedup" in capsys.readouterr().out.lower() or True

    def test_out_capture(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["table3", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "RC-8/4" in out.read_text()
        assert "RC-8/4" in captured  # still printed to the console

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "t2.json"
        assert main(["table2", "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert "table2" in data
        assert data["table2"]["conv-8MB"]["tag_entry_bits"] == 34


class TestJsonable:
    def test_primitives_and_containers(self):
        assert _jsonable({"a": (1, 2.5, None, True)}) == {"a": [1, 2.5, None, True]}

    def test_numpy_arrays(self):
        import numpy as np

        assert _jsonable(np.arange(3)) == [0, 1, 2]

    def test_dataclasses(self):
        from repro.core.latency_model import LatencyComparison

        d = _jsonable(LatencyComparison("x", 0.1, -0.2, 0.0))
        assert d == {"label": "x", "tag_delta": 0.1, "data_delta": -0.2,
                     "total_delta": 0.0}

    def test_fallback_to_str(self):
        class Odd:
            def __repr__(self):
                return "odd!"

        assert isinstance(_jsonable(Odd()), str)
