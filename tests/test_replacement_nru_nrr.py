"""Tests for the one-bit NRU and NRR policies."""

import random

import pytest

from repro.replacement import NRRPolicy, NRUPolicy


class TestNRU:
    def test_prefers_unreferenced(self):
        nru = NRUPolicy(1, 4, rng=random.Random(0))
        nru.on_fill(0, 0)
        nru.on_fill(0, 1)
        # ways 2, 3 never touched -> their ref bits are clear
        assert nru.victim(0, [0, 1, 2, 3]) in (2, 3)

    def test_ages_when_all_referenced(self):
        nru = NRUPolicy(1, 4, rng=random.Random(0))
        for way in range(4):
            nru.on_fill(0, way)
        victim = nru.victim(0, [0, 1, 2, 3])
        assert victim in range(4)
        # after aging every bit is clear again
        assert all(nru._ref[0][w] == 0 for w in range(4))

    def test_hit_sets_ref_bit(self):
        nru = NRUPolicy(1, 2, rng=random.Random(0))
        nru.on_fill(0, 0)
        nru.on_fill(0, 1)
        nru.victim(0, [0, 1])  # ages the set
        nru.on_hit(0, 1)
        assert nru.victim(0, [0, 1]) == 0

    def test_respects_candidates_even_after_aging(self):
        nru = NRUPolicy(1, 4, rng=random.Random(3))
        for way in range(4):
            nru.on_fill(0, way)
        assert nru.victim(0, [2]) == 2


class TestNRR:
    """NRR distinguishes *reused* lines, not recently *used* ones."""

    def test_fill_marks_not_reused(self):
        nrr = NRRPolicy(1, 4, rng=random.Random(0))
        nrr.on_fill(0, 0)
        assert not nrr.is_reused(0, 0)

    def test_hit_marks_reused(self):
        nrr = NRRPolicy(1, 4, rng=random.Random(0))
        nrr.on_fill(0, 0)
        nrr.on_hit(0, 0)
        assert nrr.is_reused(0, 0)

    def test_victim_prefers_not_reused(self):
        nrr = NRRPolicy(1, 4, rng=random.Random(0))
        for way in range(4):
            nrr.on_fill(0, way)
        nrr.on_hit(0, 0)
        nrr.on_hit(0, 2)
        for _ in range(20):
            assert nrr.victim(0, [0, 1, 2, 3]) in (1, 3)

    def test_key_difference_from_nru(self):
        """A line that was filled and never hit is a victim under NRR even
        though it was recently *used* (filled)."""
        nrr = NRRPolicy(1, 2, rng=random.Random(0))
        nrr.on_fill(0, 0)
        nrr.on_hit(0, 0)  # way 0 reused
        nrr.on_fill(0, 1)  # way 1 fresh, most recently used
        assert nrr.victim(0, [0, 1]) == 1

    def test_ages_when_all_reused(self):
        nrr = NRRPolicy(1, 2, rng=random.Random(0))
        for way in range(2):
            nrr.on_fill(0, way)
            nrr.on_hit(0, way)
        victim = nrr.victim(0, [0, 1])
        assert victim in (0, 1)
        assert all(nrr._nrr[0][w] == 1 for w in range(2))

    def test_invalidate_resets_bit(self):
        nrr = NRRPolicy(1, 2, rng=random.Random(0))
        nrr.on_fill(0, 0)
        nrr.on_hit(0, 0)
        nrr.on_invalidate(0, 0)
        assert not nrr.is_reused(0, 0)

    def test_deterministic_with_seed(self):
        outcomes = []
        for _ in range(2):
            nrr = NRRPolicy(1, 8, rng=random.Random(42))
            for way in range(8):
                nrr.on_fill(0, way)
            outcomes.append([nrr.victim(0, list(range(8))) for _ in range(5)])
        assert outcomes[0] == outcomes[1]
