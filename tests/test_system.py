"""Integration tests for the CMP system simulator."""

import pytest

from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import System, build_llc_banks, run_workload
from repro.workloads import Trace, Workload, build_workload
from repro.workloads.mixes import EXAMPLE_MIX


def tiny_config(spec=None, **kw):
    return SystemConfig(llc=spec or LLCSpec.conventional(8), scale=32, **kw)


def synthetic_workload(n_cores=8, pattern="hot", n_refs=400):
    """Hand-built workloads with known cache behaviour."""
    traces = []
    for c in range(n_cores):
        base = (c + 1) << 30
        if pattern == "hot":
            addrs = [base + (i % 4) for i in range(n_refs)]
        elif pattern == "stream":
            addrs = [base + i for i in range(n_refs)]
        else:
            raise ValueError(pattern)
        traces.append(Trace(f"{pattern}{c}", [2] * n_refs, addrs, [0] * n_refs))
    return Workload(pattern, traces)


class TestBankBuilder:
    def test_conventional_banks(self):
        banks = build_llc_banks(tiny_config())
        assert len(banks) == 4
        assert banks[0].num_lines == 1024  # 4096 scaled lines / 4 banks

    def test_reuse_banks(self):
        banks = build_llc_banks(tiny_config(LLCSpec.reuse(4, 1)))
        assert banks[0].tag_lines == 512
        assert banks[0].data_lines == 128
        assert banks[0].data_sets == 1  # fully associative

    def test_reuse_set_assoc_clamped(self):
        banks = build_llc_banks(tiny_config(LLCSpec.reuse(8, 0.5, data_assoc=128)))
        assert banks[0].data_assoc == 64  # clamped to the bank's data lines

    def test_ncid_banks(self):
        banks = build_llc_banks(tiny_config(LLCSpec.ncid(8, 1)))
        assert banks[0].data_assoc == 2  # paper's example: 8 MBeq tags, 1 MB data

    def test_unknown_kind(self):
        bad = tiny_config()
        object.__setattr__(bad.llc, "kind", "weird")
        with pytest.raises(ValueError):
            build_llc_banks(bad)


class TestSystemBehaviour:
    def test_hot_loop_stays_in_l1(self):
        result = run_workload(tiny_config(), synthetic_workload(pattern="hot"))
        assert sum(result.l1_mpki) == pytest.approx(0.0, abs=1.0)
        # IPC approaches 1 when everything hits in L1
        assert all(ipc > 0.9 for ipc in result.ipc)

    def test_stream_misses_everywhere(self):
        result = run_workload(tiny_config(), synthetic_workload(pattern="stream"))
        assert all(m > 100 for m in result.llc_mpki)
        assert all(ipc < 0.3 for ipc in result.ipc)

    def test_workload_core_count_checked(self):
        with pytest.raises(ValueError):
            System(tiny_config(), synthetic_workload(n_cores=4))

    def test_determinism(self):
        wl = build_workload(EXAMPLE_MIX, 3000, seed=9)
        r1 = run_workload(tiny_config(), wl)
        r2 = run_workload(tiny_config(), wl)
        assert r1.cycles == r2.cycles and r1.instructions == r2.instructions

    def test_measurement_window_excludes_warmup(self):
        wl = build_workload(EXAMPLE_MIX, 3000, seed=9)
        full = run_workload(tiny_config(), wl, warmup_frac=0.0)
        measured = run_workload(tiny_config(), wl, warmup_frac=0.5)
        for c in range(8):
            assert measured.instructions[c] < full.instructions[c]
            assert measured.cycles[c] < full.cycles[c]

    def test_reuse_cache_runs_and_reports(self):
        wl = build_workload(EXAMPLE_MIX, 3000, seed=9)
        result = run_workload(tiny_config(LLCSpec.reuse(4, 1)), wl)
        s = result.llc_stats
        assert s["tag_fills"] > 0
        assert 0.0 <= s["fraction_not_entered"] <= 1.0
        assert s["to_hits"] >= s["data_fills"] - s["tag_fills"]

    def test_generation_recording(self):
        wl = build_workload(EXAMPLE_MIX, 3000, seed=9)
        result = run_workload(tiny_config(), wl, record_generations=True)
        log = result.generations
        assert log is not None and log.n_generations > 0
        assert 0.0 <= log.mean_live_fraction() <= 1.0

    def test_dram_traffic_accounted(self):
        wl = synthetic_workload(pattern="stream")
        result = run_workload(tiny_config(), wl)
        assert result.dram_stats["reads"] > 0

    def test_more_channels_never_slower(self):
        from repro.dram import DDR3Config

        wl = synthetic_workload(pattern="stream", n_refs=800)
        slow = run_workload(tiny_config(), wl)
        fast = run_workload(
            tiny_config().with_dram(DDR3Config(channels=4)), wl
        )
        assert fast.performance >= slow.performance * 0.999

    def test_coherence_traffic_on_shared_lines(self):
        """Two cores ping-ponging writes on one line generate upgrades or
        coherence invalidations, never a crash or inclusion violation."""
        shared = 0x1000
        traces = []
        for c in range(8):
            writes = [1 if c < 2 else 0] * 200
            addrs = [shared if c < 2 else ((c + 1) << 30) + i for i in range(200)]
            traces.append(Trace(f"c{c}", [1] * 200, addrs, writes))
        result = run_workload(tiny_config(), Workload("pingpong", traces))
        assert sum(result.instructions) > 0

    def test_directory_consistency_after_run(self):
        wl = build_workload(EXAMPLE_MIX, 2000, seed=4)
        system = System(tiny_config(), wl)
        system.run()
        for b, bank in enumerate(system.banks):
            # translate bank-local presence back through the system helpers
            for set_idx in range(bank.tags.num_sets):
                for way in bank.tags.valid_ways(set_idx):
                    local = bank.tags.addrs[set_idx][way]
                    addr = system._global(local, b)
                    for c, ph in enumerate(system.private):
                        present = bank.directory.is_present(set_idx, way, c)
                        assert present == ph.contains(addr), (
                            f"directory mismatch for {addr:#x} core {c}"
                        )

    def test_inclusion_after_run(self):
        """Every line in a private cache has a tag in the SLLC."""
        wl = build_workload(EXAMPLE_MIX, 2000, seed=4)
        for spec in (LLCSpec.conventional(8), LLCSpec.reuse(4, 1), LLCSpec.ncid(8, 1)):
            system = System(tiny_config(spec), wl)
            system.run()
            for c, ph in enumerate(system.private):
                for addr in ph.l2.resident_addrs():
                    bank = system._bank_of(addr)
                    local = system._local(addr)
                    assert system.banks[bank].tags.lookup(local)[1] is not None, (
                        f"{spec.label}: line {addr:#x} in core {c} L2 "
                        "missing from SLLC tags"
                    )

    def test_reuse_pointer_consistency_after_run(self):
        wl = build_workload(EXAMPLE_MIX, 2000, seed=4)
        system = System(tiny_config(LLCSpec.reuse(8, 1)), wl)
        system.run()
        for bank in system.banks:
            assert bank.check_pointer_consistency()
