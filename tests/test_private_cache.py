"""Tests for the private L1/L2 hierarchy."""

import pytest

from repro.cache.private_cache import PrivateCache, PrivateHierarchy


class TestPrivateCache:
    def test_fill_and_lookup(self):
        c = PrivateCache(8, 2, "L1")
        assert c.lookup(0x10) is None
        assert c.fill(0x10, dirty=False) is None
        assert c.lookup(0x10) is not None

    def test_lru_eviction(self):
        c = PrivateCache(4, 2, "L1")  # 2 sets x 2 ways
        c.fill(0, False)
        c.fill(2, False)
        c.lookup(0)  # way holding 0 becomes MRU
        evicted = c.fill(4, False)  # set 0 full: evict LRU (addr 2)
        assert evicted == (2, False)

    def test_dirty_eviction_reported(self):
        c = PrivateCache(2, 2, "L1")
        c.fill(0, dirty=True)
        c.fill(2, False)
        evicted = c.fill(4, False)
        assert evicted == (0, True)

    def test_invalidate(self):
        c = PrivateCache(4, 2, "L1")
        c.fill(1, dirty=True)
        assert c.invalidate(1) == (True, True)
        assert c.invalidate(1) == (False, False)

    def test_set_dirty_requires_presence(self):
        c = PrivateCache(4, 2, "L1")
        with pytest.raises(KeyError):
            c.set_dirty(9)

    def test_double_fill_rejected(self):
        c = PrivateCache(4, 2, "L1")
        c.fill(3, False)
        with pytest.raises(ValueError):
            c.fill(3, False)


@pytest.fixture
def ph():
    # L1: 4 lines 2-way; L2: 16 lines 4-way
    return PrivateHierarchy(4, 2, 16, 4)


class TestPrivateHierarchy:
    def test_miss_then_hits(self, ph):
        level, upg, _ = ph.access(0x20, False)
        assert level == "miss"
        assert not upg
        ph.fill(0x20, dirty=False)
        level, _, _ = ph.access(0x20, False)
        assert level == "l1"

    def test_l2_hit_refills_l1(self, ph):
        ph.fill(0x20, False)
        # push 0x20 out of tiny L1 (set 0 holds even addresses)
        ph.fill(0x30, False)
        ph.fill(0x40, False)
        level, _, _ = ph.access(0x20, False)
        assert level == "l2"
        level, _, _ = ph.access(0x20, False)
        assert level == "l1"

    def test_inclusion_invariant_under_churn(self, ph):
        for a in range(64):
            if ph.access(a, a % 3 == 0)[0] == "miss":
                ph.fill(a, dirty=a % 3 == 0)
            assert ph.check_inclusion()

    def test_l2_eviction_reported_with_merged_dirty(self, ph):
        ph.fill(0x10, dirty=True)  # dirty in L1, clean in L2
        evictions = []
        a = 0x20
        while not evictions:
            evictions = ph.fill(a, False)
            a += 0x10
        # every reported eviction with the dirty line must carry dirty=True
        for addr, dirty in evictions:
            if addr == 0x10:
                assert dirty

    def test_write_hit_on_clean_needs_upgrade(self, ph):
        ph.fill(0x08, dirty=False)
        level, upg, _ = ph.access(0x08, True)
        assert level == "l1" and upg
        ph.mark_written(0x08)
        level, upg, _ = ph.access(0x08, True)
        assert level == "l1" and not upg

    def test_write_hit_on_dirty_no_upgrade(self, ph):
        ph.fill(0x08, dirty=True)
        level, upg, _ = ph.access(0x08, True)
        assert level == "l1" and not upg

    def test_write_miss_is_not_upgrade(self, ph):
        level, upg, _ = ph.access(0x55, True)
        assert level == "miss" and not upg

    def test_invalidate_merges_dirty_across_levels(self, ph):
        ph.fill(0x10, dirty=True)  # L1 dirty
        present, dirty = ph.invalidate(0x10)
        assert present and dirty
        assert not ph.contains(0x10)

    def test_l1_victim_dirtiness_propagates_to_l2(self, ph):
        ph.fill(0x00, dirty=True)
        ph.fill(0x10, False)
        ph.fill(0x20, False)  # L1 set 0 evicts 0x00 -> L2 copy must be dirty
        assert ph.l1.probe(0x00) is None
        assert ph.l2.is_dirty(0x00)

    def test_l2_must_cover_l1(self):
        with pytest.raises(ValueError):
            PrivateHierarchy(16, 2, 8, 4)
