"""Tests for :mod:`repro.cluster.ring`: the consistent-hash ring that maps
keys to owner nodes (emptiness, ownership, bounded movement on join,
deterministic cross-process placement)."""

import pathlib
import subprocess
import sys

import pytest

from repro.cluster import HashRing, RingEmptyError
from repro.cluster.ring import DEFAULT_VNODES, _point

KEYS = [f"key:{i}" for i in range(400)]


class TestMembership:
    def test_empty_ring_raises_cleanly(self):
        ring = HashRing()
        with pytest.raises(RingEmptyError):
            ring.owner("k")
        with pytest.raises(RingEmptyError):
            ring.preference("k", 2)
        assert len(ring) == 0

    def test_ring_empty_error_is_a_lookup_error(self):
        # callers that guard generic lookup failures still catch it
        assert issubclass(RingEmptyError, LookupError)

    def test_duplicate_add_and_missing_remove_are_loud(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.remove("b")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_contains_and_nodes_sorted(self):
        ring = HashRing(["b", "a", "c"])
        assert "a" in ring and "z" not in ring
        assert ring.nodes == ("a", "b", "c")


class TestOwnership:
    def test_single_node_owns_all_keys(self):
        ring = HashRing(["solo"])
        assert all(ring.owner(k) == "solo" for k in KEYS)
        assert ring.shares(KEYS) == {"solo": 1.0}

    def test_preference_head_is_owner(self):
        ring = HashRing(["a", "b", "c"])
        for key in KEYS[:50]:
            pref = ring.preference(key, 3)
            assert pref[0] == ring.owner(key)
            assert len(pref) == len(set(pref)) == 3

    def test_preference_clamps_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.preference("k", 5)) == 2

    def test_shares_are_roughly_balanced(self):
        ring = HashRing(["a", "b", "c", "d"])
        shares = ring.shares(KEYS)
        # vnodes keep every node within a loose band around 1/N
        for node, share in shares.items():
            assert 0.10 <= share <= 0.45, (node, share)

    def test_insertion_order_is_irrelevant(self):
        forward = HashRing(["a", "b", "c"])
        backward = HashRing(["c", "b", "a"])
        assert forward.fingerprint() == backward.fingerprint()
        assert all(forward.owner(k) == backward.owner(k) for k in KEYS)


class TestJoinMovement:
    def test_join_moves_at_most_fair_share(self):
        """Adding one node to N moves <= ~1/(N+1) + eps of the keys."""
        for n in (1, 2, 3, 4):
            nodes = [f"n{i}" for i in range(n)]
            ring = HashRing(nodes)
            before = {k: ring.owner(k) for k in KEYS}
            ring.add("joiner")
            moved = sum(1 for k in KEYS if ring.owner(k) != before[k])
            bound = 1.0 / (n + 1) + 0.10  # vnode-variance allowance
            assert moved / len(KEYS) <= bound, (n, moved)

    def test_moved_keys_only_go_to_the_joiner(self):
        ring = HashRing(["a", "b", "c"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.add("d")
        for key in KEYS:
            after = ring.owner(key)
            if after != before[key]:
                assert after == "d", (key, before[key], after)

    def test_leave_is_the_mirror_of_join(self):
        ring = HashRing(["a", "b", "c", "d"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove("d")
        for key in KEYS:
            after = ring.owner(key)
            if before[key] != "d":
                assert after == before[key]  # survivors keep their keys
            else:
                assert after != "d"


class TestDeterminism:
    def test_seed_changes_placement(self):
        a = HashRing(["a", "b", "c"], seed=1)
        b = HashRing(["a", "b", "c"], seed=2)
        assert a.fingerprint() != b.fingerprint()

    def test_point_ignores_pythonhashseed_inputs(self):
        # blake2b over the token string: same args, same 64-bit point
        assert _point(2013, "node", "a", 0) == _point(2013, "node", "a", 0)
        assert _point(2013, "key", "x") != _point(2013, "key", "y")

    def test_placement_byte_stable_across_processes(self):
        """A fresh interpreter (new PYTHONHASHSEED) builds the same ring."""
        ring = HashRing(["alpha", "beta", "gamma"], seed=2013)
        script = (
            "from repro.cluster import HashRing;"
            "r = HashRing(['alpha', 'beta', 'gamma'], seed=2013);"
            "print(r.fingerprint());"
            "print(r.owner('probe:17'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={
                "PYTHONPATH": str(
                    pathlib.Path(__file__).resolve().parents[1] / "src"
                ),
                "PYTHONHASHSEED": "12345",
            },
        ).stdout.split()
        assert out[0] == ring.fingerprint()
        assert out[1] == ring.owner("probe:17")

    def test_default_vnodes_constant(self):
        assert HashRing(["a"]).vnodes == DEFAULT_VNODES
