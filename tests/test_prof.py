"""Tests for repro.obs.prof: phase timers, the deterministic sampler and
the cProfile wrapper — including the determinism guarantees the perf
observatory rests on (identical runs → identical phase trees and identical
collapsed stacks; profilers off → byte-identical results)."""

import json
import pickle
import sys

import pytest

from repro.experiments.common import ExperimentParams
from repro.obs import Observability
from repro.obs.prof import (
    NULL_PHASE_TIMER,
    DeterministicSampler,
    PhaseTimer,
    ProfileSession,
    clock,
    cpu_clock,
    merge_phase_tables,
    peak_rss_kb,
    phase_shape,
    process_resources,
    profile_collapsed,
)
from repro.runner import Runner
from repro.runner.engine import execute_cell_measured


# -- clocks and resources ----------------------------------------------------


class TestClocks:
    def test_clock_is_monotonic(self):
        a = clock()
        b = clock()
        assert b >= a

    def test_cpu_clock_advances_under_work(self):
        start = cpu_clock()
        sum(i * i for i in range(200_000))
        assert cpu_clock() > start

    def test_peak_rss_positive_on_posix(self):
        if sys.platform.startswith(("linux", "darwin")):
            assert peak_rss_kb() > 0
        else:
            assert peak_rss_kb() >= 0

    def test_process_resources_shape(self):
        snap = process_resources()
        assert set(snap) == {"cpu_s", "peak_rss_kb"}
        assert snap["cpu_s"] >= 0.0


# -- phase timers ------------------------------------------------------------


class TestPhaseTimer:
    def test_records_count_and_seconds(self):
        prof = PhaseTimer()
        for _ in range(3):
            with prof.phase("work"):
                pass
        table = prof.table()
        assert table["work"]["count"] == 3
        assert table["work"]["seconds"] >= 0.0

    def test_nesting_builds_slash_paths(self):
        prof = PhaseTimer()
        with prof.phase("cell"):
            with prof.phase("build"):
                pass
            with prof.phase("simulate"):
                with prof.phase("warmup"):
                    pass
        assert set(prof.table()) == {
            "cell", "cell/build", "cell/simulate", "cell/simulate/warmup",
        }

    def test_tree_view(self):
        prof = PhaseTimer()
        with prof.phase("a"):
            with prof.phase("b"):
                pass
            with prof.phase("b"):
                pass
        tree = prof.tree()
        assert tree["a"]["count"] == 1
        assert tree["a"]["children"]["b"]["count"] == 2

    def test_phase_shape_strips_seconds(self):
        prof = PhaseTimer()
        with prof.phase("a"):
            with prof.phase("b"):
                pass
        shape = phase_shape(prof.tree())
        assert shape == {
            "a": {"count": 1, "children": {"b": {"count": 1, "children": {}}}}
        }

    def test_disabled_timer_is_noop(self):
        with NULL_PHASE_TIMER.phase("anything"):
            pass
        assert NULL_PHASE_TIMER.table() == {}

    def test_registry_receives_histogram(self):
        obs = Observability.enabled(profile=True)
        with obs.prof.phase("tag_lookup"):
            pass
        snap = obs.registry.snapshot()
        family = snap["repro_phase_seconds"]
        (series,) = family["series"]
        assert series["labels"] == {"phase": "tag_lookup"}
        assert series["count"] == 1

    def test_clear_requires_closed_phases(self):
        prof = PhaseTimer()
        ctx = prof.phase("open")
        ctx.__enter__()
        with pytest.raises(RuntimeError, match="phases still open"):
            prof.clear()
        ctx.__exit__(None, None, None)
        prof.clear()
        assert prof.table() == {}

    def test_merge_phase_tables(self):
        a = {"cell": {"count": 1, "seconds": 1.0}}
        b = {"cell": {"count": 2, "seconds": 0.5},
             "cell/sim": {"count": 2, "seconds": 0.25}}
        merged = merge_phase_tables([a, b])
        assert merged["cell"] == {"count": 3, "seconds": 1.5}
        assert merged["cell/sim"]["count"] == 2

    def test_exception_still_records_and_unwinds(self):
        prof = PhaseTimer()
        with pytest.raises(ValueError):
            with prof.phase("outer"):
                with prof.phase("inner"):
                    raise ValueError("boom")
        assert prof.table()["outer/inner"]["count"] == 1
        # the stack fully unwound: a new phase lands at the root again
        with prof.phase("after"):
            pass
        assert "after" in prof.table()


# -- deterministic sampler ---------------------------------------------------


def _busy(n=40):
    def leaf(i):
        return i * i

    return sum(leaf(i) for i in range(n))


class TestDeterministicSampler:
    def test_identical_runs_identical_collapsed_stacks(self):
        _, first = profile_collapsed(lambda: _busy(2000), period=7)
        _, second = profile_collapsed(lambda: _busy(2000), period=7)
        assert first == second
        assert first  # non-empty: the workload makes >7 calls

    def test_collapsed_format(self):
        _, text = profile_collapsed(lambda: _busy(500), period=5)
        assert text.endswith("\n")
        for line in text.strip().split("\n"):
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or ":" in stack

    def test_sampler_excludes_itself(self):
        _, text = profile_collapsed(lambda: _busy(500), period=3)
        assert "repro.obs.prof" not in text

    def test_period_validation(self):
        with pytest.raises(ValueError, match="period"):
            DeterministicSampler(period=0)

    def test_refuses_to_stack_hooks(self):
        outer = DeterministicSampler()
        inner = DeterministicSampler()
        with outer:
            with pytest.raises(RuntimeError, match="hook"):
                inner.start()
        assert sys.getprofile() is None

    def test_clear_resets_counts(self):
        sampler = DeterministicSampler(period=3)
        with sampler:
            _busy(200)
        assert sampler.samples > 0
        sampler.clear()
        assert sampler.samples == 0 and sampler.collapsed() == ""

    def test_result_passthrough(self):
        result, _ = profile_collapsed(lambda: 41 + 1, period=1000)
        assert result == 42


# -- cProfile wrapper --------------------------------------------------------


class TestProfileSession:
    def test_rows_sorted_by_cumtime(self):
        session = ProfileSession()
        assert session.run(_busy, 500) == _busy(500)
        rows = session.rows(top=10)
        assert rows
        assert all(
            rows[i]["cumtime_s"] >= rows[i + 1]["cumtime_s"]
            for i in range(len(rows) - 1)
        )
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(rows[0])

    def test_write_json(self, tmp_path):
        session = ProfileSession()
        session.run(_busy, 100)
        out = tmp_path / "profile.json"
        session.write_json(out, top=5)
        doc = json.loads(out.read_text())
        assert doc["schema"] == 1
        assert 0 < len(doc["rows"]) <= 5


# -- profiling never changes simulation results ------------------------------


def _cells():
    from repro.experiments.common import BASELINE_SPEC

    params = ExperimentParams(n_workloads=1, n_refs=800, scale=32, seed=7)
    return [params.cell(BASELINE_SPEC, ref)
            for ref in params.workload_refs()]


class TestProfilingDoesNotPerturbResults:
    def test_profiled_run_byte_identical_to_bare_run(self):
        cells = _cells()
        bare = Runner(parallel=0).run_cells(cells)
        profiled = Runner(parallel=0, profile_phases=True).run_cells(cells)
        assert pickle.dumps(bare) == pickle.dumps(profiled)

    def test_profiled_runs_have_identical_phase_shapes(self):
        cell = _cells()[0]
        _, first = execute_cell_measured(cell, profile_phases=True)
        _, second = execute_cell_measured(cell, profile_phases=True)
        shape = {p: row["count"] for p, row in first["phases"].items()}
        assert shape == {
            p: row["count"] for p, row in second["phases"].items()
        }
        assert "cell/simulate" in first["phases"]

    def test_sampled_simulation_has_identical_collapsed_stacks(self):
        cell = _cells()[0]
        from repro.runner.engine import execute_cell

        _, first = profile_collapsed(lambda: execute_cell(cell), period=101)
        _, second = profile_collapsed(lambda: execute_cell(cell), period=101)
        assert first == second
        assert "repro.hierarchy" in first
