"""Edge-case tests: LLC base interface, recorders, config corners, system
boundary conditions."""

import random

import pytest

from repro.cache.llc_base import NULL_RECORDER, BaseLLC, LLCAccess
from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import System, run_workload
from repro.metrics.generations import GenerationRecorder
from repro.workloads import Trace, Workload


class TestLLCAccess:
    def test_defaults(self):
        res = LLCAccess("llc")
        assert res.dram_reads == 0
        assert res.writebacks == ()
        assert res.coherence_invals == () and res.inclusion_invals == ()

    def test_repr(self):
        assert "dram" in repr(LLCAccess("dram", dram_reads=1))


class TestBaseLLC:
    def test_interface_is_abstract(self):
        llc = BaseLLC(num_cores=2, rng=random.Random(0))
        with pytest.raises(NotImplementedError):
            llc.access(0, 0, False, 0)
        with pytest.raises(NotImplementedError):
            llc.upgrade(0, 0)
        with pytest.raises(NotImplementedError):
            llc.notify_private_eviction(0, 0, False)
        with pytest.raises(NotImplementedError):
            llc.prefetch(0, 0, 0)

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.on_fill(1, 2)
        NULL_RECORDER.on_hit(1, 2)
        NULL_RECORDER.on_evict(1, 2)

    def test_attach_recorder(self):
        llc = BaseLLC(2)
        rec = GenerationRecorder()
        llc.attach_recorder(rec)
        assert llc.recorder is rec

    def test_stats_keys(self):
        s = BaseLLC(2).stats()
        for key in ("accesses", "data_hits", "tag_misses", "tag_fills", "data_fills"):
            assert key in s


class TestGenerationEdges:
    def test_hit_distribution_more_groups_than_generations(self):
        rec = GenerationRecorder()
        rec.activate(0)
        rec.on_fill(1, 0)
        rec.on_hit(1, 1)
        rec.on_evict(1, 2)
        log = rec.finalize(10)
        share, avg = log.hit_distribution(n_groups=10)
        assert share.sum() == pytest.approx(1.0)

    def test_bad_groups(self):
        rec = GenerationRecorder()
        log = rec.finalize(1)
        with pytest.raises(ValueError):
            log.hit_distribution(0)

    def test_mean_live_fraction_empty(self):
        rec = GenerationRecorder()
        assert rec.finalize(1).mean_live_fraction() == 0.0


class TestConfigEdges:
    def test_vway_label_and_geometry(self):
        spec = LLCSpec.vway(8)
        assert spec.label == "VW-8MB"
        assert spec.tag_mbeq == 16

    def test_storage_mb(self):
        assert LLCSpec.conventional(8).storage_mb() == 8
        assert LLCSpec.reuse(8, 2).storage_mb() == 2

    def test_bad_warmup_frac(self):
        wl = Workload("w", [Trace("t", [0], [1], [0])] * 8)
        system = System(SystemConfig(), wl)
        with pytest.raises(ValueError):
            system.run(warmup_frac=1.0)

    def test_experiment_format_table(self):
        from repro.experiments.common import format_table

        text = format_table(["a", "bb"], [(1, None), ("xy", 3)], title="T")
        assert text.startswith("T")
        assert "xy" in text and "--" in text


class TestSystemBoundaries:
    def _wl(self, lengths):
        traces = []
        for c, n in enumerate(lengths):
            base = (c + 1) << 30
            traces.append(
                Trace(f"t{c}", [1] * n, [base + i % 4 for i in range(n)], [0] * n)
            )
        return Workload("w", traces)

    def test_uneven_trace_lengths(self):
        wl = self._wl([50, 100, 25, 75, 50, 100, 25, 75])
        result = run_workload(SystemConfig(), wl, warmup_frac=0.0)
        assert all(i > 0 for i in result.instructions)

    def test_single_reference_traces(self):
        wl = self._wl([1] * 8)
        result = run_workload(SystemConfig(), wl, warmup_frac=0.0)
        assert sum(result.instructions) == 16  # gap 1 + the reference

    def test_zero_warmup_with_recorder(self):
        wl = self._wl([40] * 8)
        result = run_workload(
            SystemConfig(), wl, warmup_frac=0.0, record_generations=True
        )
        assert result.generations is not None

    def test_dram_channels_spread_banks(self):
        from repro.dram import DDR3Config, DDR3Memory

        mem = DDR3Memory(DDR3Config(channels=4))
        # lines 0..3 land on distinct channels
        chans = {mem._locate(i)[0] for i in range(4)}
        assert chans == {0, 1, 2, 3}

    def test_reuse_cache_with_ship_tag_policy_runs(self):
        wl = self._wl([100] * 8)
        spec = LLCSpec.reuse(4, 1, tag_policy="ship")
        result = run_workload(SystemConfig(llc=spec), wl, warmup_frac=0.0)
        assert result.performance > 0

    def test_reuse_cache_with_slru_data_policy_runs(self):
        wl = self._wl([100] * 8)
        spec = LLCSpec.reuse(4, 1, data_policy="slru")
        result = run_workload(SystemConfig(llc=spec), wl, warmup_frac=0.0)
        assert result.performance > 0
