"""Tests for the Table 3 latency surrogate."""

import pytest

from repro.core.latency_model import SRAMLatencyModel, table3


@pytest.fixture(scope="module")
def model():
    return SRAMLatencyModel()


class TestModel:
    def test_monotone_over_cache_sizes(self, model):
        sizes = [1 << k for k in range(21, 28)]
        lats = [model.array_latency(s) for s in sizes]
        assert all(b > a for a, b in zip(lats, lats[1:]))

    def test_positive_over_domain(self, model):
        for k in range(21, 28):
            assert model.array_latency(1 << k) > 0

    def test_rejects_out_of_domain_arrays(self, model):
        with pytest.raises(ValueError):
            model.array_latency(0)
        with pytest.raises(ValueError):
            model.array_latency(1 << 18)

    def test_serial_access_adds(self, model):
        assert model.cache_latency(1 << 22, 1 << 26) == pytest.approx(
            model.array_latency(1 << 22) + model.array_latency(1 << 26)
        )


class TestTable3:
    """Anchors of paper Table 3."""

    def test_rc88_row(self):
        rows = {r.label: r for r in table3()}
        r = rows["RC-8/8"]
        assert r.tag_delta == pytest.approx(0.36, abs=0.01)
        assert abs(r.data_delta) < 0.03  # "same"
        assert r.total_delta == pytest.approx(0.10, abs=0.02)

    def test_rc84_row(self):
        rows = {r.label: r for r in table3()}
        r = rows["RC-8/4"]
        assert r.tag_delta == pytest.approx(0.36, abs=0.03)
        assert r.data_delta == pytest.approx(-0.16, abs=0.01)
        assert r.total_delta == pytest.approx(-0.03, abs=0.01)

    def test_data_access_dominates(self):
        """The paper notes the 8 MB data access is ~3x the tag access."""
        model = SRAMLatencyModel()
        from repro.core.cost_model import conventional_cost

        conv = conventional_cost(8)
        tag = model.array_latency(conv.tag_entry_bits * conv.tag_entries)
        data = model.array_latency(conv.data_entry_bits * conv.data_entries)
        assert data / tag == pytest.approx(3.0, abs=0.05)
