"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.conventional import ConventionalLLC
from repro.cache.private_cache import PrivateHierarchy
from repro.core.cost_model import conventional_cost, reuse_cache_cost
from repro.core.reuse_cache import ReuseCache
from repro.metrics.generations import GenerationRecorder
from repro.replacement import make_policy

# -- strategies ----------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.integers(0, 3),  # core
        st.integers(0, 63),  # line address
        st.booleans(),  # write?
        st.integers(0, 2),  # action selector
    ),
    min_size=1,
    max_size=400,
)


class _Mirror:
    """Reference model of private contents, driven like the System drives
    an SLLC, used to feed coherent PUT/inval sequences to the cache."""

    def __init__(self, cores=4):
        self.private = {c: set() for c in range(cores)}

    def apply_access(self, llc, core, addr, is_write, now):
        res = llc.access(addr, core, is_write, now)
        for victim in res.coherence_invals:
            self.private[victim].discard(addr)
        for victim, vaddr in res.inclusion_invals:
            self.private[victim].discard(vaddr)
        self.private[core].add(addr)
        return res

    def maybe_evict(self, llc, core, addr, dirty):
        if addr in self.private[core]:
            self.private[core].discard(addr)
            llc.notify_private_eviction(addr, core, dirty)


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_reuse_cache_pointer_bijection_holds(ops):
    """fwd/rev pointers stay a bijection and states stay consistent under
    arbitrary coherent traffic."""
    rc = ReuseCache(32, 4, 8, data_assoc=2, num_cores=4, rng=random.Random(0))
    mirror = _Mirror()
    for now, (core, addr, is_write, action) in enumerate(ops):
        if action < 2:
            mirror.apply_access(rc, core, addr, is_write, now)
        else:
            mirror.maybe_evict(rc, core, addr, is_write)
    assert rc.check_pointer_consistency()


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_reuse_cache_directory_matches_mirror(ops):
    rc = ReuseCache(64, 4, 16, num_cores=4, rng=random.Random(0))
    mirror = _Mirror()
    for now, (core, addr, is_write, action) in enumerate(ops):
        if action < 2:
            mirror.apply_access(rc, core, addr, is_write, now)
        else:
            mirror.maybe_evict(rc, core, addr, is_write)
    for set_idx in range(rc.tags.num_sets):
        for way in rc.tags.valid_ways(set_idx):
            addr = rc.tags.addrs[set_idx][way]
            assert rc.directory.sharers(set_idx, way) == sorted(
                c for c, lines in mirror.private.items() if addr in lines
            )


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_conventional_inclusion_of_mirror(ops):
    """Every line the mirror says is private has an SLLC tag (inclusion)."""
    llc = ConventionalLLC(32, 4, num_cores=4, rng=random.Random(0))
    mirror = _Mirror()
    for now, (core, addr, is_write, action) in enumerate(ops):
        if action < 2:
            mirror.apply_access(llc, core, addr, is_write, now)
        else:
            mirror.maybe_evict(llc, core, addr, is_write)
    for lines in mirror.private.values():
        for addr in lines:
            assert llc.tags.lookup(addr)[1] is not None


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_reuse_cache_data_never_exceeds_capacity(ops):
    rc = ReuseCache(64, 4, 4, num_cores=4, rng=random.Random(0))
    mirror = _Mirror()
    for now, (core, addr, is_write, action) in enumerate(ops):
        if action < 2:
            mirror.apply_access(rc, core, addr, is_write, now)
        else:
            mirror.maybe_evict(rc, core, addr, is_write)
        assert rc.data_occupancy() <= 4


@settings(max_examples=50, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 255), min_size=1, max_size=300),
    dirty=st.booleans(),
)
def test_private_hierarchy_inclusion_property(addrs, dirty):
    ph = PrivateHierarchy(4, 2, 16, 4)
    for a in addrs:
        level, _, _ = ph.access(a, dirty)
        if level == "miss":
            ph.fill(a, dirty)
        assert ph.check_inclusion()


@settings(max_examples=50, deadline=None)
@given(
    name=st.sampled_from(["lru", "nru", "nrr", "srrip", "brrip", "clock", "random"]),
    events=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.booleans()),
        max_size=200,
    ),
    candidates=st.sets(st.integers(0, 3), min_size=1, max_size=4),
)
def test_policies_always_return_a_candidate(name, events, candidates):
    """victim() always returns one of the eligible ways, whatever history."""
    policy = make_policy(name, 4, 4, rng=random.Random(0))
    for set_idx, way, hit in events:
        if hit:
            policy.on_hit(set_idx, way)
        else:
            policy.on_fill(set_idx, way)
    cand = sorted(candidates)
    assert policy.victim(2, cand) in cand


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 2), st.integers(1, 50)),
        min_size=1,
        max_size=200,
    )
)
def test_generation_recorder_conservation(events):
    """Total recorded hits equals hits fed for tracked generations, and
    every generation has fill <= last_hit <= evict."""
    rec = GenerationRecorder()
    rec.activate(0)
    now = 0
    live = set()
    fed_hits = 0
    for addr, action, dt in events:
        now += dt
        if action == 0 and addr not in live:
            rec.on_fill(addr, now)
            live.add(addr)
        elif action == 1 and addr in live:
            rec.on_hit(addr, now)
            fed_hits += 1
        elif action == 2 and addr in live:
            rec.on_evict(addr, now)
            live.discard(addr)
    log = rec.finalize(now + 1)
    assert log.hits.sum() == fed_hits
    assert (log.fills <= log.last_hits).all()
    assert (log.last_hits <= log.evicts).all()


@settings(max_examples=100, deadline=None)
@given(
    tag_mb=st.sampled_from([2, 4, 8, 16, 32]),
    ratio=st.sampled_from([2, 4, 8, 16]),
)
def test_reuse_cache_always_cheaper_than_conventional_tag_size(tag_mb, ratio):
    """A reuse cache is always cheaper than the conventional cache whose tag
    array it borrows (data array is >= 2x smaller)."""
    rc = reuse_cache_cost(tag_mb, tag_mb / ratio)
    conv = conventional_cost(tag_mb)
    assert rc.total_kbits < conv.total_kbits


@settings(max_examples=100, deadline=None)
@given(
    tag_mb=st.sampled_from([4, 8, 16]),
    data_mb=st.sampled_from([0.5, 1, 2, 4]),
    assoc=st.sampled_from([16, 32, 64, "full"]),
)
def test_cost_model_pointer_width_consistency(tag_mb, data_mb, assoc):
    """Pointer fields must be wide enough to address their targets."""
    if data_mb > tag_mb:
        return
    c = reuse_cache_cost(tag_mb, data_mb, data_assoc=assoc)
    data_entries = c.data_entries
    data_ways = data_entries if assoc == "full" else int(assoc)
    assert 2 ** c.fields["tag.fwd_pointer"] >= data_ways
    assert 2 ** c.fields["data.rev_pointer"] >= c.tag_entries // (
        data_entries // data_ways
    )
