"""Tests for system configuration and LLC specs."""

import pytest

from repro.dram import DDR3Config
from repro.hierarchy.config import LLCSpec, SystemConfig, capacity_lines


class TestCapacityLines:
    def test_full_size(self):
        assert capacity_lines(8) == 131072
        assert capacity_lines(0.5) == 8192

    def test_scaled(self):
        assert capacity_lines(8, scale=32) == 4096
        assert capacity_lines(1, scale=32) == 512

    def test_rejects_fractional_result(self):
        with pytest.raises(ValueError):
            capacity_lines(8, scale=48)  # not a power of two

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            capacity_lines(3)


class TestLLCSpec:
    def test_labels(self):
        assert LLCSpec.conventional(8).label == "conv-8MB-lru"
        assert LLCSpec.conventional(16, "drrip").label == "conv-16MB-drrip"
        assert LLCSpec.reuse(4, 1).label == "RC-4/1"
        assert LLCSpec.reuse(4, 0.5).label == "RC-4/0.5"
        assert LLCSpec.ncid(8, 2).label == "NCID-8/2"

    def test_specs_are_frozen(self):
        spec = LLCSpec.reuse(8, 4)
        with pytest.raises(Exception):
            spec.kind = "conventional"


class TestSystemConfig:
    def test_defaults_match_table4(self):
        cfg = SystemConfig()
        assert cfg.num_cores == 8
        assert cfg.l1_kb == 32 and cfg.l1_assoc == 4
        assert cfg.l2_kb == 256 and cfg.l2_assoc == 8
        assert cfg.llc_banks == 4 and cfg.llc_assoc == 16
        assert cfg.l2_latency == 7 and cfg.llc_latency == 10
        assert cfg.dram.raw_latency == 92

    def test_scaled_private_geometry(self):
        cfg = SystemConfig(scale=32)
        assert cfg.l1_lines() == 16
        assert cfg.l2_lines() == 128

    def test_validate_rejects_overscaling(self):
        with pytest.raises(ValueError):
            SystemConfig(scale=512).validate()

    def test_with_llc_and_dram(self):
        cfg = SystemConfig()
        rc = cfg.with_llc(LLCSpec.reuse(8, 2))
        assert rc.llc.kind == "reuse" and rc.scale == cfg.scale
        two = cfg.with_dram(DDR3Config(channels=2))
        assert two.dram.channels == 2
