"""Tests for the conventional inclusive SLLC."""

import random

import pytest

from repro.cache.conventional import ConventionalLLC


def make(policy="lru", lines=16, assoc=4, cores=4, **kw):
    return ConventionalLLC(
        lines, assoc, policy=policy, num_cores=cores, rng=random.Random(0), **kw
    )


class TestBasics:
    def test_miss_fetches_and_fills(self):
        llc = make()
        res = llc.access(0x100, core=0, is_write=False, now=0)
        assert res.source == "dram" and res.dram_reads == 1
        res = llc.access(0x100, core=1, is_write=False, now=1)
        assert res.source == "llc"
        assert llc.data_hits == 1 and llc.tag_misses == 1

    def test_every_fill_allocates_data(self):
        llc = make()
        for a in range(10):
            llc.access(a, 0, False, a)
        assert llc.data_fills == llc.tag_fills == 10

    def test_lru_victim(self):
        llc = make(lines=8, assoc=2)  # 4 sets x 2
        llc.access(0, 0, False, 0)
        llc.access(4, 0, False, 1)
        llc.access(0, 0, False, 2)  # 0 becomes MRU
        llc.access(8, 0, False, 3)  # set 0 full: evict 4
        assert llc.tags.lookup(4)[1] is None
        assert llc.tags.lookup(0)[1] is not None

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ConventionalLLC(12, 4)


class TestCoherence:
    def test_write_invalidates_sharers(self):
        llc = make()
        llc.access(0x10, 0, False, 0)
        llc.access(0x10, 1, False, 1)
        llc.access(0x10, 2, False, 2)
        res = llc.access(0x10, 0, True, 3)
        assert sorted(res.coherence_invals) == [1, 2]
        set_idx, way = llc.tags.lookup(0x10)
        assert llc.directory.sharers(set_idx, way) == [0]

    def test_read_adds_sharer(self):
        llc = make()
        llc.access(0x10, 0, False, 0)
        llc.access(0x10, 3, False, 1)
        set_idx, way = llc.tags.lookup(0x10)
        assert llc.directory.sharers(set_idx, way) == [0, 3]

    def test_upgrade(self):
        llc = make()
        llc.access(0x10, 0, False, 0)
        llc.access(0x10, 1, False, 1)
        invals = llc.upgrade(0x10, core=1)
        assert invals == (0,)
        assert llc.upgrades == 1

    def test_upgrade_on_absent_line_is_protocol_violation(self):
        llc = make()
        with pytest.raises(KeyError):
            llc.upgrade(0x999, 0)

    def test_eviction_back_invalidates_sharers(self):
        llc = make(lines=8, assoc=2)
        llc.access(0, 0, False, 0)
        llc.access(4, 1, False, 1)
        res = llc.access(8, 2, False, 2)  # evicts line 0 (LRU)
        assert res.inclusion_invals == ((0, 0),)

    def test_put_clears_presence(self):
        llc = make()
        llc.access(0x10, 2, False, 0)
        wbs = llc.notify_private_eviction(0x10, 2, dirty=False)
        assert wbs == ()
        set_idx, way = llc.tags.lookup(0x10)
        assert not llc.directory.in_private_caches(set_idx, way)

    def test_dirty_put_absorbed_then_written_back_on_evict(self):
        llc = make(lines=8, assoc=2)
        llc.access(0, 0, False, 0)
        llc.notify_private_eviction(0, 0, dirty=True)
        llc.access(4, 0, False, 1)
        res = llc.access(8, 0, False, 2)  # evicts dirty line 0
        assert res.writebacks == (0,)

    def test_put_on_absent_line_is_inclusion_violation(self):
        llc = make()
        with pytest.raises(KeyError):
            llc.notify_private_eviction(0x77, 0, False)


class TestNRRProtection:
    def test_nrr_avoids_private_resident_victims(self):
        llc = make(policy="nrr", lines=8, assoc=2)
        llc.access(0, 0, False, 0)  # present in core 0's caches
        llc.access(4, 1, False, 1)
        llc.notify_private_eviction(4, 1, False)  # line 4 left private caches
        res = llc.access(8, 2, False, 2)
        # victim must be line 4 (line 0 still private-resident)
        assert res.inclusion_invals == ()
        assert llc.tags.lookup(0)[1] is not None
        assert llc.tags.lookup(4)[1] is None

    def test_forced_eviction_when_all_private(self):
        llc = make(policy="nrr", lines=8, assoc=2)
        llc.access(0, 0, False, 0)
        llc.access(4, 1, False, 1)
        res = llc.access(8, 2, False, 2)
        assert len(res.inclusion_invals) == 1  # someone had to go

    def test_lru_baseline_does_not_protect(self):
        llc = make(policy="lru", lines=8, assoc=2)
        llc.access(0, 0, False, 0)
        llc.access(4, 1, False, 1)
        res = llc.access(8, 2, False, 2)
        assert res.inclusion_invals == ((0, 0),)  # strict LRU: inclusion victim


class TestStats:
    def test_counters(self):
        llc = make()
        llc.access(1, 0, False, 0)
        llc.access(1, 0, False, 1)
        s = llc.stats()
        assert s["accesses"] == 2
        assert s["data_hits"] == 1
        assert s["tag_misses"] == 1

    def test_drrip_policy_wired(self):
        llc = make(policy="drrip")
        for a in range(32):
            llc.access(a, a % 4, False, a)
        assert llc.tag_misses == 32
