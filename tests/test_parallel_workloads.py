"""Tests for the parallel (PARSEC/SPLASH-2-like) workload generators."""

import numpy as np
import pytest

from repro.workloads.parallel import (
    PARALLEL_APPS,
    PARALLEL_PROFILES,
    _GRID_BASE,
    _PRIVATE_BASE,
    generate_parallel_workload,
)


class TestProfiles:
    def test_figure11_apps(self):
        assert set(PARALLEL_APPS) == {
            "blackscholes", "canneal", "ferret", "fluidanimate", "ocean"
        }

    def test_ferret_shared_set_is_large_and_flat(self):
        """Ferret is the one loser in Fig. 11: multi-MB shared set, weak skew."""
        ferret = PARALLEL_PROFILES["ferret"]
        assert ferret.shared_lines > PARALLEL_PROFILES["canneal"].shared_lines
        assert ferret.shared_zipf < PARALLEL_PROFILES["canneal"].shared_zipf


class TestGeneration:
    def test_threads_share_lines(self):
        wl = generate_parallel_workload("canneal", 5000, seed=1)
        assert wl.num_cores == 8
        shared_sets = []
        for t in wl.traces:
            arr = np.array(t.addrs)
            shared_sets.append(set(arr[arr < _GRID_BASE].tolist()))
        common = set.intersection(*shared_sets)
        assert len(common) > 10  # genuinely shared working set

    def test_private_regions_disjoint(self):
        wl = generate_parallel_workload("blackscholes", 3000, seed=1)
        privates = []
        for t in wl.traces:
            arr = np.array(t.addrs)
            privates.append(set(arr[arr >= _PRIVATE_BASE].tolist()))
        for i in range(8):
            for j in range(i + 1, 8):
                assert not (privates[i] & privates[j])

    def test_scan_tiles_disjoint(self):
        wl = generate_parallel_workload("ocean", 3000, seed=1)
        tiles = []
        for t in wl.traces:
            arr = np.array(t.addrs)
            scan = arr[(arr >= _GRID_BASE) & (arr < _PRIVATE_BASE)]
            tiles.append(set(scan.tolist()))
        for i in range(8):
            for j in range(i + 1, 8):
                assert not (tiles[i] & tiles[j])

    def test_deterministic(self):
        a = generate_parallel_workload("ferret", 1000, seed=3)
        b = generate_parallel_workload("ferret", 1000, seed=3)
        for ta, tb in zip(a.traces, b.traces):
            assert ta.addrs == tb.addrs

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown parallel application"):
            generate_parallel_workload("raytrace", 100)
