"""Tests for the DDR3 timing model."""

import pytest

from repro.dram import DDR3Config, DDR3Memory


def cfg(**kw):
    return DDR3Config(**kw)


class TestConfig:
    def test_defaults_match_table4(self):
        c = cfg()
        assert c.channels == 1
        assert c.banks_per_channel == 16
        assert c.raw_latency == 92
        assert c.bus_cycles == 16
        assert c.page_lines == 64  # 4 KB / 64 B

    def test_validation(self):
        with pytest.raises(ValueError):
            DDR3Memory(cfg(channels=3))
        with pytest.raises(ValueError):
            DDR3Memory(cfg(row_hit_latency=0))
        with pytest.raises(ValueError):
            DDR3Memory(cfg(row_hit_latency=100, raw_latency=92))


class TestTiming:
    def test_cold_read_pays_raw_latency(self):
        mem = DDR3Memory()
        assert mem.read(0, now=100) == 100 + 92

    def test_row_hit_is_faster(self):
        mem = DDR3Memory()
        done1 = mem.read(0, 0)
        done2 = mem.read(1, done1)  # same page -> open row
        assert done2 - done1 == mem.config.row_hit_latency
        assert mem.row_hits == 1

    def test_row_conflict_pays_full_latency(self):
        mem = DDR3Memory()
        done1 = mem.read(0, 0)
        # same bank, different row: page_lines*banks lines away
        far = mem.config.page_lines * mem.config.banks_per_channel
        done2 = mem.read(far, done1)
        assert done2 - done1 == mem.config.raw_latency

    def test_bank_serialisation(self):
        mem = DDR3Memory()
        a = mem.read(0, 0)
        b = mem.read(0, 0)  # same bank, issued at the same instant
        assert b > a  # the second waits for the first

    def test_different_banks_overlap(self):
        mem = DDR3Memory()
        a = mem.read(0, 0)
        b = mem.read(mem.config.page_lines, 0)  # next page -> next bank
        # bus still serialises the transfers but most latency overlaps
        assert b < a + mem.config.raw_latency

    def test_bus_bounds_bandwidth(self):
        mem = DDR3Memory()
        page = mem.config.page_lines
        completions = [mem.read(i * page, 0) for i in range(16)]
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        # once the pipeline fills, consecutive lines are spaced by the bus time
        assert gaps[-1] == mem.config.bus_cycles

    def test_writes_do_not_delay_reads_on_other_banks(self):
        """Read-priority scheduling: posted writes to other banks leave the
        demand-read path untouched."""
        mem = DDR3Memory()
        for i in range(8):
            mem.write(i * mem.config.page_lines, 0)
        t = mem.read(8 * mem.config.page_lines, 0)
        assert t == 92
        assert mem.writes == 8

    def test_writes_contend_for_their_own_bank(self):
        mem = DDR3Memory()
        mem.write(0, 0)
        t = mem.read(1, 0)  # same bank, same row
        assert t > mem.config.row_hit_latency  # queued behind the write

    def test_channels_partition_traffic(self):
        one = DDR3Memory(cfg(channels=1))
        two = DDR3Memory(cfg(channels=2))
        page = one.config.page_lines
        # even/odd lines alternate channels in the 2-channel system
        done_one = max(one.read(i, 0) for i in range(2 * 16))
        done_two = max(two.read(i, 0) for i in range(2 * 16))
        assert done_two < done_one
        assert page  # silence linters

    def test_closed_page_never_row_hits(self):
        mem = DDR3Memory(cfg(page_policy="closed"))
        done1 = mem.read(0, 0)
        done2 = mem.read(1, done1)  # same page — but it was precharged
        assert done2 - done1 == mem.config.raw_latency
        assert mem.row_hits == 0

    def test_unknown_page_policy_rejected(self):
        with pytest.raises(ValueError):
            DDR3Memory(cfg(page_policy="adaptive"))

    def test_stats(self):
        mem = DDR3Memory()
        mem.read(0, 0)
        mem.read(1, 200)
        s = mem.stats()
        assert s["reads"] == 2
        assert 0 < s["row_hit_rate"] <= 0.5
        assert s["avg_read_latency"] > 0
