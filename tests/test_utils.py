"""Tests for repro.utils."""

import pytest

from repro.utils import ceil_div, ilog2, is_power_of_two, require_power_of_two


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(n)


class TestIlog2:
    def test_exact(self):
        for k in range(24):
            assert ilog2(1 << k) == k

    @pytest.mark.parametrize("bad", [0, -4, 3, 12, 1000])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestRequirePowerOfTwo:
    def test_passthrough(self):
        assert require_power_of_two(64, "x") == 64

    def test_message_includes_name(self):
        with pytest.raises(ValueError, match="num_sets"):
            require_power_of_two(3, "num_sets")


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 1, 0), (1, 1, 1), (5, 2, 3), (6, 2, 3), (7, 8, 1)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
