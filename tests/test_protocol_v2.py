"""Tests for the v2 wire protocol: codec, framing fuzz cases, negotiation,
pipelining, batch verbs, and the unified transport."""

import asyncio
import struct

import pytest

from repro.service import CacheClient, CacheServer, ServerError, ShardedStore
from repro.service.protocol import (
    FLAG_TRACE,
    HEADER_SIZE,
    MAGIC,
    MAX_BATCH_ITEMS,
    MAX_FRAME_PAYLOAD,
    REQUEST_FIELDS,
    STATUS_IDS,
    STATUS_NAMES,
    VERB_IDS,
    VERSION,
    FieldError,
    FrameEncoder,
    FrameError,
    PayloadReader,
    decode_request_fields,
    decode_trace,
    encode_request,
    read_frame,
)
from repro.service.transport import Transport, _v1_payload


def run(coro):
    """Drive one async test body (no pytest-asyncio in the toolchain)."""
    return asyncio.run(asyncio.wait_for(coro, 60))


def feed(*chunks, eof=True):
    """A StreamReader pre-loaded with ``chunks``."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


async def _started_server(**kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("data_capacity", 64)
    store = ShardedStore(**kwargs)
    server = CacheServer(store, port=0)
    await server.start()
    return server


# ---------------------------------------------------------------------------
# codec round-trips
# ---------------------------------------------------------------------------


SAMPLE_FIELDS = {
    "key": "line:deadbeef",
    "peer": "127.0.0.1:7070",
    "value": b"\x00\x01payload",
    "version": 2 ** 40 + 7,
    "keys": ["a", "b", "c"],
    "items": [("a", b"1"), ("b", b"")],
    "blob": b"raw tail bytes",
}


class TestCodecRoundtrip:
    def test_every_verb_roundtrips(self):
        async def body():
            enc = FrameEncoder()
            for verb, kinds in REQUEST_FIELDS.items():
                fields = [SAMPLE_FIELDS[k] for k in kinds]
                raw = encode_request(enc, verb, fields, seq=17)
                frame = await read_frame(feed(raw))
                assert frame.verb_id == VERB_IDS[verb]
                assert frame.seq == 17
                token, rd = decode_trace(frame)
                assert token is None
                assert decode_request_fields(verb, rd) == fields
        run(body())

    def test_trace_token_roundtrips(self):
        async def body():
            enc = FrameEncoder()
            raw = encode_request(
                enc, "GET", ["k"], seq=1, trace="T=abc123/0007"
            )
            frame = await read_frame(feed(raw))
            assert frame.flags & FLAG_TRACE
            token, rd = decode_trace(frame)
            assert token == "T=abc123/0007"
            assert decode_request_fields("GET", rd) == ["k"]
        run(body())

    def test_encoder_buffer_reuse_is_clean(self):
        # a short frame after a long one must not leak stale bytes
        async def body():
            enc = FrameEncoder()
            encode_request(enc, "SET", ["k", b"x" * 4096], seq=1)
            raw = encode_request(enc, "GET", ["k"], seq=2)
            frame = await read_frame(feed(raw))
            _, rd = decode_trace(frame)
            assert decode_request_fields("GET", rd) == ["k"]
            assert rd.exhausted
        run(body())

    def test_clean_eof_returns_none(self):
        async def body():
            assert await read_frame(feed(b"")) is None
        run(body())

    def test_sniffed_first_byte_is_prepended(self):
        async def body():
            raw = FrameEncoder().simple(VERB_IDS["PING"], 9)
            frame = await read_frame(feed(raw[1:]), first_byte=raw[:1])
            assert frame.verb_id == VERB_IDS["PING"]
            assert frame.seq == 9
        run(body())


# ---------------------------------------------------------------------------
# framing fuzz: truncation, corruption, oversize
# ---------------------------------------------------------------------------


class TestFramingErrors:
    def _whole(self):
        return FrameEncoder().simple(
            VERB_IDS["SET"], 3, b"\x00\x01k\x00\x00\x00\x01v"
        )

    def test_every_truncation_point_raises(self):
        async def body():
            raw = self._whole()
            for cut in range(1, len(raw)):
                with pytest.raises(FrameError):
                    await read_frame(feed(raw[:cut]))
        run(body())

    def test_bad_magic_raises(self):
        async def body():
            raw = bytearray(self._whole())
            raw[0] = 0x41  # 'A' — looks like a v1 line
            with pytest.raises(FrameError, match="bad magic"):
                await read_frame(feed(bytes(raw)))
        run(body())

    def test_bad_version_raises(self):
        async def body():
            raw = bytearray(self._whole())
            raw[1] = VERSION + 1
            with pytest.raises(FrameError, match="version"):
                await read_frame(feed(bytes(raw)))
        run(body())

    def test_oversized_payload_is_rejected_without_reading_it(self):
        async def body():
            header = struct.pack(
                ">BBBBII", MAGIC, VERSION, VERB_IDS["SET"], 0, 1,
                MAX_FRAME_PAYLOAD + 1,
            )
            with pytest.raises(FrameError, match="too large"):
                await read_frame(feed(header, eof=False))
        run(body())

    def test_payload_truncated_mid_field_is_field_error(self):
        async def body():
            enc = FrameEncoder()
            raw = encode_request(enc, "SET", ["k", b"vvvv"], seq=1)
            # keep the frame boundary intact but lie about a field length
            body_bytes = bytearray(raw)
            # key u16 length claims more bytes than the payload holds
            struct.pack_into(">H", body_bytes, HEADER_SIZE, 0x4000)
            frame = await read_frame(feed(bytes(body_bytes)))
            _, rd = decode_trace(frame)
            with pytest.raises(FieldError):
                decode_request_fields("SET", rd)
        run(body())

    def test_batch_over_cap_is_field_error(self):
        enc = FrameEncoder()
        with pytest.raises(FieldError, match="batch too large"):
            encode_request(
                enc, "MGET", [["k"] * (MAX_BATCH_ITEMS + 1)], seq=1
            )

    def test_pipelined_frames_split_across_reads(self):
        async def body():
            enc = FrameEncoder()
            raws = [
                encode_request(enc, "GET", [f"k{i}"], seq=i)
                for i in range(4)
            ]
            stream = b"".join(raws)
            # split at awkward boundaries: mid-header and mid-payload
            cuts = [3, HEADER_SIZE + 1, len(raws[0]) + 5, len(stream) - 2]
            chunks, prev = [], 0
            for cut in cuts:
                chunks.append(stream[prev:cut])
                prev = cut
            chunks.append(stream[prev:])
            reader = feed(*chunks)
            for i in range(4):
                frame = await read_frame(reader)
                assert frame.seq == i
                _, rd = decode_trace(frame)
                assert decode_request_fields("GET", rd) == [f"k{i}"]
            assert await read_frame(reader) is None
        run(body())


class TestPayloadReader:
    def test_reads_are_sequential_and_bounded(self):
        rd = PayloadReader(struct.pack(">HIQ", 7, 8, 9))
        assert rd.u16() == 7
        assert rd.u32() == 8
        assert rd.u64() == 9
        assert rd.exhausted
        with pytest.raises(FieldError):
            rd.u8()

    def test_non_utf8_string_is_field_error(self):
        rd = PayloadReader(struct.pack(">H", 2) + b"\xff\xfe")
        with pytest.raises(FieldError, match="utf-8"):
            rd.string()


# ---------------------------------------------------------------------------
# negotiation: v2 preferred, v1 fallback
# ---------------------------------------------------------------------------


async def _v1_only_server():
    """A minimal line-framed v1 server (pre-v2 software, for fallback)."""

    async def handle(reader, writer):
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, OSError):
                break
            if not line:
                break
            try:
                parts = line.decode("utf-8").split()
            except UnicodeDecodeError:
                writer.write(b"ERR request not utf-8\n")
                await writer.drain()
                continue
            if parts and parts[0].upper() == "PING":
                writer.write(b"PONG\n")
            else:
                writer.write(b"ERR unknown\n")
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


class TestNegotiation:
    def test_auto_picks_v2_against_new_server(self):
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    assert await c.ping()
                    assert c.protocol_version == 2
            finally:
                await server.stop()
        run(body())

    def test_auto_falls_back_to_v1_against_old_server(self):
        async def body():
            server, port = await _v1_only_server()
            try:
                async with CacheClient("127.0.0.1", port) as c:
                    assert await c.ping()
                    assert c.protocol_version == 1
            finally:
                server.close()
                await server.wait_closed()
        run(body())

    def test_forced_v2_against_old_server_errors(self):
        async def body():
            server, port = await _v1_only_server()
            try:
                transport = Transport("127.0.0.1", port, mode="v2",
                                      max_retries=0)
                with pytest.raises(ConnectionError):
                    await transport.call("PING")
                await transport.close()
            finally:
                server.close()
                await server.wait_closed()
        run(body())

    def test_forced_v1_against_new_server_works(self):
        async def body():
            server = await _started_server()
            try:
                c = CacheClient("127.0.0.1", server.port, protocol="v1")
                try:
                    assert await c.ping()
                    assert c.protocol_version == 1
                finally:
                    await c.close()
            finally:
                await server.stop()
        run(body())

    def test_probe_failure_leaves_no_connections(self):
        async def body():
            transport = Transport("127.0.0.1", 1, max_retries=0)
            with pytest.raises((ConnectionError, OSError)):
                await transport.call("PING")
            assert transport._open == 0
            await transport.close()
        run(body())


# ---------------------------------------------------------------------------
# pipelining and the mux connection
# ---------------------------------------------------------------------------


class TestPipelining:
    def test_interleaved_responses_match_seq(self):
        async def body():
            server = await _started_server(num_shards=2, data_capacity=1024,
                                           admission="always")
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    keys = [f"k{i}" for i in range(32)]
                    await c.mset([(k, k.encode()) for k in keys])
                    # 32 concurrent GETs share one framed connection;
                    # every response must come back to its own caller
                    values = await asyncio.gather(
                        *[c.get(k) for k in keys]
                    )
                    assert values == [k.encode() for k in keys]
                    assert c.transport._open == 1
            finally:
                await server.stop()
        run(body())

    def test_cancelled_call_does_not_poison_the_connection(self):
        async def body():
            server = await _started_server(admission="always")
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    await c.ping()
                    task = asyncio.ensure_future(c.get("k"))
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
                    # the mux must survive an abandoned sequence id
                    await c.set("k2", b"v")
                    assert await c.ping()
            finally:
                await server.stop()
        run(body())

    def test_server_error_frame_keeps_connection(self):
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError):
                        await c.transport.call("RGET", "k")  # wrong layer
                    assert await c.ping()  # same transport still live
            finally:
                await server.stop()
        run(body())


# ---------------------------------------------------------------------------
# batch verbs, on both framings
# ---------------------------------------------------------------------------


class TestBatchVerbs:
    @pytest.mark.parametrize("protocol", ["v2", "v1"])
    def test_mset_mget_mdel_roundtrip(self, protocol):
        async def body():
            server = await _started_server(num_shards=2, data_capacity=1024,
                                           admission="always")
            try:
                c = CacheClient("127.0.0.1", server.port, protocol=protocol)
                try:
                    flags = await c.mset([("a", b"1"), ("b", b"2")])
                    assert flags == [True, True]
                    assert await c.mget(["a", "missing", "b"]) == \
                        [b"1", None, b"2"]
                    assert await c.mdel(["a", "missing"]) == [True, False]
                    assert await c.mget(["a", "b"]) == [None, b"2"]
                finally:
                    await c.close()
            finally:
                await server.stop()
        run(body())

    def test_empty_batches_short_circuit(self):
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    assert await c.mget([]) == []
                    assert await c.mset([]) == []
                    assert await c.mdel([]) == []
            finally:
                await server.stop()
        run(body())

    def test_batch_admission_matches_singles(self):
        # batch verbs must see the same admission decisions as singles:
        # first touch tags, second touch admits
        async def body():
            server = await _started_server()
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    assert await c.mget(["x"]) == [None]         # tag
                    assert await c.mset([("x", b"v")]) == [False]  # declined
                    assert await c.mget(["x"]) == [None]         # reuse
                    assert await c.mset([("x", b"v")]) == [True]   # stored
                    assert await c.mget(["x"]) == [b"v"]
            finally:
                await server.stop()
        run(body())

    def test_empty_value_roundtrips(self):
        async def body():
            server = await _started_server(admission="always")
            try:
                async with CacheClient("127.0.0.1", server.port) as c:
                    assert await c.set("k", b"") is True
                    assert await c.get("k") == b""
                    assert await c.mget(["k"]) == [b""]
            finally:
                await server.stop()
        run(body())


# ---------------------------------------------------------------------------
# v1 payload builder (the transport's line framing table)
# ---------------------------------------------------------------------------


class TestV1Payload:
    def test_simple_verbs(self):
        assert _v1_payload("PING", (), None) == b"PING\n"
        assert _v1_payload("GET", ("k",), None) == b"GET k\n"

    def test_value_becomes_sized_body(self):
        assert _v1_payload("SET", ("k", b"abc"), None) == b"SET k 3\nabc\n"

    def test_trace_token_is_trailing_field(self):
        assert _v1_payload("GET", ("k",), "T=1/2") == b"GET k T=1/2\n"

    def test_status_names_cover_ids(self):
        assert set(STATUS_NAMES) == set(STATUS_IDS.values())
