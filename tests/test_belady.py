"""Tests for Belady OPT and the bound-study driver."""

import random

import pytest

from repro.cache.belady import belady_hit_ratio, belady_hits, next_use_indices


class TestNextUse:
    def test_basic(self):
        assert next_use_indices([1, 2, 1, 3]) == [2, 4, 4, 4]

    def test_empty(self):
        assert next_use_indices([]) == []

    def test_repeated(self):
        assert next_use_indices([5, 5, 5]) == [1, 2, 3]


class TestBelady:
    def test_everything_fits(self):
        trace = [1, 2, 1, 2, 1, 2]
        assert belady_hits(trace, 2) == 4

    def test_capacity_one(self):
        assert belady_hits([1, 1, 2, 2, 1], 1) == 2

    def test_classic_example(self):
        # OPT keeps the line reused sooner.
        trace = [1, 2, 3, 1, 2, 3]
        # capacity 2: misses 1,2,3; OPT keeps {1,2}->hit 1, hit 2; then 3
        assert belady_hits(trace, 2) == 2

    def test_bypass_beats_demand_insertion(self):
        """A scan interleaved with a reused pair: bypass-OPT keeps the pair."""
        trace = []
        for i in range(20):
            trace += [1, 2, 100 + i]  # 1,2 reused; 100+i never again
        assert belady_hits(trace, 2) == 38  # every access to 1/2 after warmup

    def test_opt_at_least_lru(self):
        rng = random.Random(0)
        trace = [rng.randrange(30) for _ in range(500)]
        # simple LRU reference
        import collections

        lru = collections.OrderedDict()
        lru_hits = 0
        for a in trace:
            if a in lru:
                lru_hits += 1
                lru.move_to_end(a)
            else:
                if len(lru) >= 8:
                    lru.popitem(last=False)
                lru[a] = True
        assert belady_hits(trace, 8) >= lru_hits

    def test_monotone_in_capacity(self):
        rng = random.Random(1)
        trace = [rng.randrange(50) for _ in range(800)]
        ratios = [belady_hit_ratio(trace, c) for c in (1, 4, 16, 64)]
        assert all(b >= a for a, b in zip(ratios, ratios[1:]))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            belady_hits([1], 0)

    def test_empty_trace(self):
        assert belady_hit_ratio([], 4) == 0.0


class TestOptBoundDriver:
    def test_structure(self):
        from repro.experiments import ExperimentParams
        from repro.experiments.opt_bound import format_opt_bound, run_opt_bound

        r = run_opt_bound(ExperimentParams(n_workloads=1, n_refs=1500))
        assert set(r["opt"]) == {8, 4, 2, 1, 0.5}
        # OPT hit ratio is monotone in capacity
        vals = [r["opt"][mb] for mb in (0.5, 1, 2, 4, 8)]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))
        # OPT at 8 MB upper-bounds the measured conventional 8 MB hit ratio
        assert r["opt"][8] >= r["measured"]["conv-8MB-lru"] - 1e-9
        assert format_opt_bound(r)


class TestLLCTraceCapture:
    def test_capture(self):
        from repro.hierarchy.config import LLCSpec, SystemConfig
        from repro.hierarchy.system import System
        from repro.workloads.mixes import EXAMPLE_MIX, build_workload

        wl = build_workload(EXAMPLE_MIX, 1000, seed=2)
        system = System(
            SystemConfig(llc=LLCSpec.conventional(8)), wl, capture_llc_trace=True
        )
        system.run()
        assert system.llc_trace
        assert len(system.llc_trace) == sum(b.accesses for b in system.banks)

    def test_disabled_by_default(self):
        from repro.hierarchy.config import LLCSpec, SystemConfig
        from repro.hierarchy.system import System
        from repro.workloads.mixes import EXAMPLE_MIX, build_workload

        wl = build_workload(EXAMPLE_MIX, 200, seed=2)
        system = System(SystemConfig(llc=LLCSpec.conventional(8)), wl)
        system.run()
        assert system.llc_trace is None
