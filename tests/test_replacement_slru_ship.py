"""Tests for the related-work policies: segmented LRU and SHiP."""

import random

import pytest

from repro.replacement import SHiPPolicy, SLRUPolicy, make_policy
from repro.replacement.rrip import RRPV_LONG, RRPV_MAX


class TestSLRU:
    def test_new_lines_are_probationary(self):
        p = SLRUPolicy(1, 4, rng=random.Random(0))
        p.on_fill(0, 0)
        assert not p.is_protected(0, 0)

    def test_hit_promotes_to_protected(self):
        p = SLRUPolicy(1, 4, rng=random.Random(0))
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        assert p.is_protected(0, 0)

    def test_victims_come_from_probationary_segment(self):
        p = SLRUPolicy(1, 4, rng=random.Random(0))
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 0)  # protect way 0
        p.on_hit(0, 1)  # protect way 1
        # ways 2 and 3 are probationary; 2 is older
        assert p.victim(0, [0, 1, 2, 3]) == 2

    def test_segment_limit_demotes_lru_protected(self):
        p = SLRUPolicy(1, 4, rng=random.Random(0), protected_frac=0.5)
        for way in range(4):
            p.on_fill(0, way)
        for way in (0, 1, 2):  # promote three: limit is 2
            p.on_hit(0, way)
        protected = [w for w in range(4) if p.is_protected(0, w)]
        assert len(protected) == 2
        assert 0 not in protected  # the oldest promotion got demoted

    def test_demoted_line_gets_second_chance(self):
        """A demoted line re-enters probation at the MRU end."""
        p = SLRUPolicy(1, 4, rng=random.Random(0), protected_frac=0.5)
        for way in range(4):
            p.on_fill(0, way)
        for way in (0, 1, 2):
            p.on_hit(0, way)
        # way 0 was demoted after ways 3 was filled: way 3 is older probation
        assert p.victim(0, [0, 3]) == 3

    def test_victim_falls_back_to_protected(self):
        p = SLRUPolicy(1, 2, rng=random.Random(0))
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        assert p.victim(0, [0]) == 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SLRUPolicy(1, 4, protected_frac=1.5)

    def test_factory(self):
        assert make_policy("slru", 2, 4).name == "slru"


class TestSHiP:
    def test_fill_prediction_from_counters(self):
        p = SHiPPolicy(8, 4, rng=random.Random(0))
        sig = p.signature(0, 0)
        p._shct[sig] = 0  # predicted dead
        p.on_fill(0, 0, thread=0)
        assert p._rrpv[0][0] == RRPV_MAX
        p._shct[sig] = 3  # predicted reused
        p.on_fill(0, 1, thread=0)
        assert p._rrpv[0][1] == RRPV_LONG

    def test_hit_trains_up_once_per_generation(self):
        p = SHiPPolicy(8, 4, rng=random.Random(0))
        p.on_fill(0, 0, thread=1)
        sig = p._sig[0][0]
        before = p._shct[sig]
        p.on_hit(0, 0)
        p.on_hit(0, 0)
        assert p._shct[sig] == before + 1  # saturating, once per generation

    def test_dead_eviction_trains_down(self):
        p = SHiPPolicy(8, 4, rng=random.Random(0))
        p.on_fill(0, 0, thread=1)
        sig = p._sig[0][0]
        before = p._shct[sig]
        p.on_invalidate(0, 0)
        assert p._shct[sig] == before - 1

    def test_reused_eviction_does_not_train_down(self):
        p = SHiPPolicy(8, 4, rng=random.Random(0))
        p.on_fill(0, 0, thread=1)
        sig = p._sig[0][0]
        p.on_hit(0, 0)
        after_hit = p._shct[sig]
        p.on_invalidate(0, 0)
        assert p._shct[sig] == after_hit

    def test_learns_streaming_signature(self):
        """After enough dead generations a signature's fills go distant."""
        p = SHiPPolicy(8, 4, rng=random.Random(0))
        for _ in range(10):
            p.on_fill(0, 0, thread=2)
            p.on_invalidate(0, 0)
        p.on_fill(0, 0, thread=2)
        assert p._rrpv[0][0] == RRPV_MAX

    def test_victim_semantics_match_rrip(self):
        p = SHiPPolicy(1, 4, rng=random.Random(0))
        for way in range(3):
            p.on_fill(0, way, thread=0)
            p.on_hit(0, way)
        assert p.victim(0, [0, 1, 2, 3]) == 3

    def test_signatures_thread_distinct(self):
        p = SHiPPolicy(64, 4, rng=random.Random(0))
        assert p.signature(0, 0) != p.signature(0, 1)

    def test_factory(self):
        assert make_policy("ship", 2, 4).name == "ship"

    def test_works_in_conventional_llc(self):
        from repro.cache.conventional import ConventionalLLC

        llc = ConventionalLLC(32, 4, policy="ship", num_cores=4,
                              rng=random.Random(0))
        for a in range(64):
            llc.access(a, a % 4, False, a)
        assert llc.tag_misses == 64
