"""Tests for the generalized reuse-allocation threshold."""

import random

import pytest

from repro.coherence import State
from repro.core.reuse_cache import ReuseCache


def make(threshold, tag_lines=32, data_lines=8):
    return ReuseCache(
        tag_lines, 4, data_lines, num_cores=4,
        reuse_threshold=threshold, rng=random.Random(0),
    )


class TestThresholdZero:
    """threshold=0: a decoupled but *non-selective* cache."""

    def test_first_access_allocates_data(self):
        rc = make(0)
        rc.access(0x10, 0, False, 0)
        assert rc.state_of(0x10) is State.S
        assert rc.data_fills == 1

    def test_never_reloads(self):
        rc = make(0)
        for a in range(6):
            rc.access(a, 0, False, a)
            rc.notify_private_eviction(a, 0, False)
        for a in range(6):
            rc.access(a, 0, False, 10 + a)
        assert rc.reuse_reloads == 0

    def test_pointer_consistency(self):
        rc = make(0, data_lines=4)
        for a in range(12):
            rc.access(a, a % 4, False, a)
        assert rc.check_pointer_consistency()


class TestThresholdOne:
    """threshold=1 must be exactly the paper's design (regression guard)."""

    def test_second_access_allocates(self):
        rc = make(1)
        rc.access(0x10, 0, False, 0)
        assert rc.state_of(0x10) is State.TO
        rc.access(0x10, 1, False, 1)
        assert rc.state_of(0x10) is State.S

    def test_default_is_one(self):
        rc = ReuseCache(32, 4, 8, num_cores=4, rng=random.Random(0))
        assert rc.reuse_threshold == 1


class TestHigherThresholds:
    def test_threshold_two_needs_third_access(self):
        rc = make(2)
        rc.access(0x10, 0, False, 0)
        rc.notify_private_eviction(0x10, 0, False)
        res = rc.access(0x10, 0, False, 1)  # 1st reuse: still tag-only
        assert rc.state_of(0x10) is State.TO
        assert res.dram_reads == 1
        rc.notify_private_eviction(0x10, 0, False)
        rc.access(0x10, 0, False, 2)  # 2nd reuse: allocate
        assert rc.state_of(0x10) is State.S
        assert rc.data_fills == 1

    def test_deferred_reuse_still_counts_reloads(self):
        rc = make(2)
        rc.access(0x10, 0, False, 0)
        rc.notify_private_eviction(0x10, 0, False)
        rc.access(0x10, 0, False, 1)
        assert rc.reuse_reloads == 1  # re-fetched from memory, not allocated

    def test_deferred_reuse_serves_from_peer(self):
        rc = make(2)
        rc.access(0x10, 0, False, 0)  # core 0 keeps it privately
        res = rc.access(0x10, 1, False, 1)
        assert res.source == "peer"
        assert rc.state_of(0x10) is State.TO

    def test_write_during_deferral_keeps_coherence(self):
        rc = make(3)
        rc.access(0x10, 0, False, 0)
        res = rc.access(0x10, 1, True, 1)  # GETX while below threshold
        assert res.coherence_invals == (0,)
        assert rc.state_of(0x10) is State.TO

    def test_count_resets_after_demotion(self):
        rc = make(1, data_lines=1)
        for a in (0x10, 0x20):  # 0x20's allocation demotes 0x10
            rc.access(a, 0, False, 0)
            rc.notify_private_eviction(a, 0, False)
            rc.access(a, 0, False, 1)
            rc.notify_private_eviction(a, 0, False)
        assert rc.state_of(0x10) is State.TO
        rc.access(0x10, 0, False, 5)  # one reuse re-allocates (threshold 1)
        assert rc.state_of(0x10) is State.S

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make(-1)


class TestSpecPlumbing:
    def test_threshold_reaches_banks(self):
        from repro.hierarchy.config import LLCSpec, SystemConfig
        from repro.hierarchy.system import build_llc_banks

        cfg = SystemConfig(llc=LLCSpec.reuse(4, 1, reuse_threshold=2))
        banks = build_llc_banks(cfg)
        assert all(b.reuse_threshold == 2 for b in banks)

    def test_threshold_ablation_driver(self):
        from repro.experiments import ExperimentParams
        from repro.experiments.ablation import run_threshold_ablation

        r = run_threshold_ablation(ExperimentParams(n_workloads=1, n_refs=1500))
        assert set(r) == {"threshold=0", "threshold=1", "threshold=2", "threshold=3"}
