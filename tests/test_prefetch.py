"""Tests for the prefetching extension."""

import random

import pytest

from repro.cache.conventional import ConventionalLLC
from repro.cache.private_cache import PrivateHierarchy
from repro.coherence import State
from repro.core.reuse_cache import ReuseCache
from repro.experiments import ExperimentParams
from repro.experiments.prefetch import format_prefetch, run_prefetch
from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import System, run_workload
from repro.workloads import Trace, Workload


class TestReuseCachePrefetch:
    def make(self):
        return ReuseCache(32, 4, 8, num_cores=4, rng=random.Random(0))

    def test_prefetch_miss_allocates_tag_only(self):
        rc = self.make()
        res = rc.prefetch(0x10, 0, 0)
        assert res.source == "dram"
        assert rc.state_of(0x10) is State.TO
        assert rc.data_fills == 0

    def test_prefetch_is_not_a_reuse_hint(self):
        """A prefetch touching a TO tag must not allocate a data entry."""
        rc = self.make()
        rc.access(0x10, 0, False, 0)
        rc.notify_private_eviction(0x10, 0, False)
        res = rc.prefetch(0x10, 0, 1)
        assert rc.state_of(0x10) is State.TO
        assert rc.data_fills == 0 and rc.to_hits == 0
        assert res.dram_reads == 1

    def test_prefetched_line_keeps_low_priority(self):
        """Prefetched tags are the first NRR victims."""
        rc = ReuseCache(8, 2, 4, num_cores=4, rng=random.Random(0))
        rc.access(0, 0, False, 0)
        rc.notify_private_eviction(0, 0, False)
        rc.access(0, 0, False, 1)  # line 0 reused: NRR bit clear
        rc.notify_private_eviction(0, 0, False)
        rc.prefetch(4, 1, 2)  # same set, prefetched, never demanded
        rc.notify_private_eviction(4, 1, False)
        rc.access(8, 2, False, 3)  # forces a tag eviction
        assert rc.state_of(4) is State.I  # the prefetched line was victimised
        assert rc.state_of(0) is not State.I

    def test_demand_after_prefetch_detects_reuse(self):
        rc = self.make()
        rc.prefetch(0x10, 0, 0)
        rc.notify_private_eviction(0x10, 0, False)
        rc.access(0x10, 0, False, 1)  # demand touch on TO: reuse detected
        assert rc.state_of(0x10) is State.S
        assert rc.data_fills == 1

    def test_prefetch_sets_presence(self):
        rc = self.make()
        rc.prefetch(0x10, 2, 0)
        set_idx, way = rc.tags.lookup(0x10)
        assert rc.directory.is_present(set_idx, way, 2)


class TestConventionalPrefetch:
    def test_prefetch_allocates_data(self):
        llc = ConventionalLLC(16, 4, num_cores=4, rng=random.Random(0))
        res = llc.prefetch(0x10, 0, 0)
        assert res.dram_reads == 1
        assert llc.tags.lookup(0x10)[1] is not None
        assert llc.data_fills == 1

    def test_prefetch_hit_only_records_presence(self):
        llc = ConventionalLLC(16, 4, num_cores=4, rng=random.Random(0))
        llc.access(0x10, 0, False, 0)
        res = llc.prefetch(0x10, 1, 1)
        assert res.source == "llc" and res.dram_reads == 0


class TestPrivatePrefetchFill:
    def test_fills_l2_not_l1(self):
        ph = PrivateHierarchy(4, 2, 16, 4)
        ph.prefetch_fill(0x20)
        assert ph.l2.probe(0x20) is not None
        assert ph.l1.probe(0x20) is None

    def test_noop_when_present(self):
        ph = PrivateHierarchy(4, 2, 16, 4)
        ph.fill(0x20, False)
        assert ph.prefetch_fill(0x20) == []


class TestSystemPrefetch:
    def _stream_workload(self, n=300):
        traces = []
        for c in range(8):
            base = (c + 1) << 30
            addrs = [base + i for i in range(n)]
            traces.append(Trace(f"s{c}", [2] * n, addrs, [0] * n))
        return Workload("stream", traces)

    def test_prefetching_helps_streams(self):
        wl = self._stream_workload()
        cfg = SystemConfig(llc=LLCSpec.conventional(8))
        off = run_workload(cfg, wl)
        on = run_workload(
            SystemConfig(llc=LLCSpec.conventional(8), prefetch_degree=2), wl
        )
        assert on.performance > off.performance * 1.2

    def test_prefetch_preserves_inclusion_and_pointers(self):
        from repro.workloads.mixes import EXAMPLE_MIX, build_workload

        wl = build_workload(EXAMPLE_MIX, 2000, seed=4)
        system = System(
            SystemConfig(llc=LLCSpec.reuse(4, 1), prefetch_degree=2), wl
        )
        system.run()
        assert sum(system.prefetch_issued) > 0
        for bank in system.banks:
            assert bank.check_pointer_consistency()
        for c, ph in enumerate(system.private):
            for addr in ph.l2.resident_addrs():
                bank = system._bank_of(addr)
                assert system.banks[bank].tags.lookup(system._local(addr))[1] is not None

    def test_prefetch_counts(self):
        wl = self._stream_workload(100)
        system = System(SystemConfig(llc=LLCSpec.conventional(8), prefetch_degree=1), wl)
        system.run()
        assert sum(system.prefetch_issued) > 0
        assert sum(b.prefetches for b in system.banks) == sum(system.prefetch_issued)


class TestPrefetchExperiment:
    def test_driver_structure(self):
        r = run_prefetch(ExperimentParams(n_workloads=1, n_refs=1200))
        assert set(r) == {"conv-8MB-lru", "RC-4/1"}
        for per_degree in r.values():
            assert set(per_degree) == {0, 1, 2}
        assert format_prefetch(r)
