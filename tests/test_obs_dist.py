"""Tests for :mod:`repro.obs.dist`: wire trace field, span identity,
cross-node merge, topology normalization, the per-key audit, SLO burn
tracking, the cluster dashboard, and the cluster client's observability
fan-in (CSTATUS summary / METRICS / TRACE drains) — including the
trace-determinism property: two identical storms on a 3-node cluster
must produce the same causal topology with zero orphans."""

import asyncio
import json

import pytest

from repro.cluster import LocalCluster
from repro.obs import Observability
from repro.obs.dist import (
    ADMITTED,
    CAT_XNODE,
    REPLICA_INVALIDATED,
    SpanIds,
    TraceContext,
    current_context,
    explain_key,
    format_explain,
    leaf_args,
    merge_node_traces,
    parse_token,
    pop_trace_token,
    span_args,
    trace_topology,
    use_context,
    wire_token,
)
from repro.obs.registry import MetricsRegistry, SLOTracker
from repro.obs.top import render_cluster_dashboard
from repro.obs.tracing import validate_chrome_trace


def run(coro):
    """Drive one async test body (no pytest-asyncio in the toolchain)."""
    return asyncio.run(asyncio.wait_for(coro, 120))


# ---------------------------------------------------------------------------
# wire field
# ---------------------------------------------------------------------------


class TestWireToken:
    def test_round_trip(self):
        ctx = TraceContext("node0.1", "node0.7", None)
        token = wire_token(ctx)
        assert token == "T=node0.1/node0.7"
        parsed = parse_token(token)
        assert parsed.trace_id == "node0.1" and parsed.span_id == "node0.7"

    def test_parse_rejects_non_tokens(self):
        assert parse_token("GET") is None
        assert parse_token("T=missing-slash") is None
        assert parse_token("T=/x") is None
        assert parse_token("T=x/") is None

    def test_pop_strips_only_a_trailing_token(self):
        parts, ctx = pop_trace_token(["SET", "k", "5", "T=t/s"])
        assert parts == ["SET", "k", "5"]
        assert ctx.trace_id == "t" and ctx.span_id == "s"

    def test_pop_leaves_tokenless_lines_alone(self):
        parts, ctx = pop_trace_token(["GET", "k"])
        assert parts == ["GET", "k"] and ctx is None
        parts, ctx = pop_trace_token([])
        assert parts == [] and ctx is None

    def test_pop_leaves_malformed_token_in_place(self):
        parts, ctx = pop_trace_token(["GET", "T=broken"])
        assert parts == ["GET", "T=broken"] and ctx is None


class TestSpanIds:
    def test_ids_are_counter_deterministic(self):
        ids = SpanIds("node0")
        a, b = ids.root(), ids.root()
        assert (a.span_id, b.span_id) == ("node0.1", "node0.2")
        assert SpanIds("node0").root().span_id == "node0.1"

    def test_root_span_id_doubles_as_trace_id(self):
        root = SpanIds("n").root()
        assert root.trace_id == root.span_id and root.parent_id is None

    def test_child_continues_the_trace(self):
        ids = SpanIds("peer")
        root = ids.root()
        child = ids.child(root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_begin_branches_on_parent(self):
        ids = SpanIds("n")
        root = ids.begin(None)
        assert root.parent_id is None
        child = ids.begin(root)
        assert child.parent_id == root.span_id


class TestContextPropagation:
    def test_ambient_context_nests_and_restores(self):
        assert current_context() is None
        outer = TraceContext("t", "s1")
        inner = TraceContext("t", "s2", "s1")
        with use_context(outer):
            assert current_context() is outer
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None

    def test_span_and_leaf_args_vocabulary(self):
        ctx = TraceContext("t", "s", "p")
        assert span_args(ctx, key="k") == {
            "key": "k", "trace": "t", "span": "s", "parent": "p",
        }
        # a leaf points at the enclosing span but owns no id
        assert leaf_args(ctx, key="k") == {
            "key": "k", "trace": "t", "parent": "s",
        }

    def test_args_without_context_collapse_to_none(self):
        assert span_args(None) is None
        assert leaf_args(None) is None
        assert span_args(None, key="k") == {"key": "k"}


# ---------------------------------------------------------------------------
# merge + causal validation + topology
# ---------------------------------------------------------------------------


def _ev(name, span=None, parent=None, key="k", ts=1.0, ph="X", cat="request"):
    args = {"key": key}
    if span is not None:
        args["span"] = span
        args["trace"] = span.split(".")[0]
    if parent is not None:
        args["parent"] = parent
    event = {"name": name, "cat": cat, "ph": ph, "ts": ts, "pid": 0, "tid": 0,
             "args": args}
    if ph == "X":
        event["dur"] = 0.5
    else:
        event["s"] = "t"
    return event


class TestMergeNodeTraces:
    def _two_node_doc(self):
        return merge_node_traces({
            "node0": [
                _ev("SET", span="a.1", ts=1.0),
                _ev("INVAL", span="a.2", parent="a.1", ts=2.0),
            ],
            "node1": [
                _ev("INVAL", span="b.1", parent="a.2", ts=3.0),
            ],
        })

    def test_nodes_become_named_process_lanes(self):
        doc = self._two_node_doc()
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert {m["args"]["name"] for m in meta} == {"node0", "node1"}
        assert doc["otherData"]["nodes"] == ["node0", "node1"]

    def test_cross_node_edge_gets_a_flow_pair(self):
        doc = self._two_node_doc()
        flows = [e for e in doc["traceEvents"] if e.get("cat") == CAT_XNODE]
        # one edge crosses nodes (a.2 -> b.1); a.1 -> a.2 stays local
        assert doc["otherData"]["cross_node_edges"] == 1
        assert sorted(e["ph"] for e in flows) == ["f", "s"]
        start = next(e for e in flows if e["ph"] == "s")
        end = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == end["id"]
        assert start["pid"] != end["pid"]
        assert end["bp"] == "e"

    def test_merged_doc_passes_causal_validation(self):
        assert validate_chrome_trace(self._two_node_doc(), causal=True) == []

    def test_orphan_parent_is_rejected(self):
        doc = merge_node_traces({
            "node0": [_ev("INVAL", span="a.1", parent="ghost.9")],
        })
        problems = validate_chrome_trace(doc, causal=True)
        assert any("orphan" in p for p in problems)

    def test_parent_cycle_is_rejected(self):
        doc = merge_node_traces({
            "node0": [
                _ev("A", span="a.1", parent="a.2"),
                _ev("B", span="a.2", parent="a.1"),
            ],
        })
        problems = validate_chrome_trace(doc, causal=True)
        assert any("cycle" in p for p in problems)


class TestTraceTopology:
    def test_ids_and_timestamps_do_not_matter(self):
        run1 = merge_node_traces({
            "node0": [_ev("SET", span="a.1", ts=1.0),
                      _ev("INVAL", span="a.2", parent="a.1", ts=2.0)],
            "node1": [_ev("INVAL", span="b.1", parent="a.2", ts=3.0)],
        })
        run2 = merge_node_traces({
            "node0": [_ev("SET", span="x.7", ts=40.0),
                      _ev("INVAL", span="x.9", parent="x.7", ts=50.0)],
            "node1": [_ev("INVAL", span="y.3", parent="x.9", ts=60.0)],
        })
        assert trace_topology(run1) == trace_topology(run2)
        assert trace_topology(run1) == [
            "node0:SET:k",
            "node0:SET:k/node0:INVAL:k",
            "node0:SET:k/node0:INVAL:k/node1:INVAL:k",
        ]

    def test_orphans_are_prefixed(self):
        doc = merge_node_traces({
            "node0": [_ev("INVAL", span="a.1", parent="ghost")],
        })
        assert trace_topology(doc) == ["ORPHAN/node0:INVAL:k"]


class TestExplainKey:
    def _doc(self):
        return merge_node_traces({
            "node0": [
                _ev("SET", span="a.1", key="hot", ts=1.0),
                _ev(ADMITTED, parent="a.1", key="hot", ts=1.1, ph="i",
                    cat="audit"),
                _ev("SET", span="a.2", key="cold", ts=2.0),
            ],
            "node1": [
                _ev(REPLICA_INVALIDATED, parent="a.1", key="hot", ts=3.0,
                    ph="i", cat="audit"),
            ],
        })

    def test_records_are_filtered_and_time_ordered(self):
        records = explain_key(self._doc(), "hot")
        assert [r["name"] for r in records] == [
            "SET", ADMITTED, REPLICA_INVALIDATED,
        ]
        assert [r["node"] for r in records] == ["node0", "node0", "node1"]

    def test_format_includes_gloss_and_lifecycle(self):
        text = format_explain("hot", explain_key(self._doc(), "hot"))
        assert "key 'hot'" in text
        assert "admitted into the data store" in text
        assert "lifecycle:" in text

    def test_unknown_key_reports_no_events(self):
        records = explain_key(self._doc(), "never-touched")
        assert records == []
        assert "no events recorded" in format_explain("never-touched", records)


# ---------------------------------------------------------------------------
# SLO burn tracking
# ---------------------------------------------------------------------------


class TestSLOTracker:
    def test_burn_rate_math(self):
        slo = SLOTracker("availability", 0.99)
        assert slo.observe(100, 100) == 0.0
        # 1% errors against a 1% budget: burning exactly on schedule
        assert slo.observe(99, 100) == pytest.approx(1.0)
        # 10% errors against a 1% budget: 10x burn
        assert slo.observe(90, 100) == pytest.approx(10.0)

    def test_no_traffic_means_no_burn(self):
        assert SLOTracker("x", 0.999).burn_rate == 0.0

    def test_gauge_is_published_to_the_registry(self):
        registry = MetricsRegistry(enabled=True)
        slo = SLOTracker("freshness", 0.999, registry=registry, tier="gold")
        slo.observe(999, 1000)
        snap = registry.snapshot()
        series = snap["repro_slo_burn_rate"]["series"]
        assert series[0]["labels"] == {"slo": "freshness", "tier": "gold"}
        assert series[0]["value"] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTracker("bad", 1.5)
        with pytest.raises(ValueError):
            SLOTracker("ok", 0.99).observe(5, 4)


# ---------------------------------------------------------------------------
# cluster dashboard rendering (pure)
# ---------------------------------------------------------------------------


def _summary(**overrides):
    base = {
        "nodes": {
            "node0": {"name": "node0", "stored": 10, "data_capacity": 128,
                      "replicas_held": 3, "pending_invals": 1,
                      "stale_rejects": 2, "protocol_races": 0,
                      "eventloop_lag_s": 0.0012, "draining": False},
            "node1": {"name": "node1", "unreachable": True},
        },
        "totals": {"stored": 10, "data_capacity": 128, "replicas_held": 3,
                   "pending_invals": 1, "stale_rejects": 2,
                   "protocol_races": 0, "directory_entries": 4},
        "num_nodes": 2,
        "unreachable": ["node1"],
        "draining": [],
    }
    base.update(overrides)
    return base


class TestRenderClusterDashboard:
    def test_totals_and_per_node_rows(self):
        frame = render_cluster_dashboard(_summary())
        assert "nodes 2 (1 reachable)" in frame
        assert "pending-INVAL debt 1" in frame
        assert "stale pushes fenced 2" in frame
        assert "10/128" in frame and "1.20" in frame  # loop lag ms

    def test_down_node_without_history_shows_placeholders(self):
        frame = render_cluster_dashboard(_summary())
        row = next(line for line in frame.splitlines() if "node1" in line)
        assert "DOWN" in row and "-" in row

    def test_stale_cstatus_is_flagged_not_dropped(self):
        summary = _summary()
        summary["nodes"]["node1"] = {
            "name": "node1", "stored": 7, "data_capacity": 128,
            "replicas_held": 1, "pending_invals": 0, "stale_rejects": 0,
            "protocol_races": 0, "eventloop_lag_s": 0.0,
            "unreachable": True, "stale_polls": 3,
        }
        frame = render_cluster_dashboard(summary)
        row = next(line for line in frame.splitlines() if "node1" in line)
        assert "DOWN*3" in row and "7/128" in row
        assert "last CSTATUS" in frame

    def test_stats_and_burn_lines(self):
        frame = render_cluster_dashboard(
            _summary(),
            stats={"total": {"hit_rate": 0.75, "hits": 3, "misses": 1}},
            burn={"availability": 2.5, "freshness": 0.0},
        )
        assert "cluster hit rate 0.7500" in frame
        assert "availability 2.50x" in frame and "freshness 0.00x" in frame

    def test_draining_state_renders(self):
        summary = _summary()
        summary["nodes"]["node0"]["draining"] = True
        summary["draining"] = ["node0"]
        frame = render_cluster_dashboard(summary)
        row = next(line for line in frame.splitlines() if "node0" in line)
        assert "draining" in row


# ---------------------------------------------------------------------------
# live cluster: observability fan-in + trace determinism
# ---------------------------------------------------------------------------


def _traced_obs_factory(name, index):
    return Observability.enabled(
        tracing=True, trace_capacity=65536, sample_every=1, time_unit="s"
    )


def _traced_cluster(**kwargs):
    kwargs.setdefault("num_nodes", 3)
    kwargs.setdefault("data_capacity_per_node", 128)
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("obs_factory", _traced_obs_factory)
    return LocalCluster(**kwargs)


async def _storm(client, writes=30, keys=5):
    """GET-before-SET rounds so reuse admission stores and replicates."""
    for i in range(writes):
        key = f"storm:{i % keys}"
        await client.get(key)
        await client.set(key, b"v%d" % i)
        if i % 7 == 6:
            await client.delete(key)


class TestClusterObservabilityFanIn:
    def test_cstatus_summary_totals_and_liveness(self):
        async def body():
            async with _traced_cluster() as cluster:
                client = cluster.client()
                await _storm(client)
                summary = await client.cstatus_summary()
                assert summary["num_nodes"] == 3
                assert summary["unreachable"] == []
                per_node = sum(
                    blk["stored"] for blk in summary["nodes"].values()
                )
                assert summary["totals"]["stored"] == per_node > 0
        run(body())

    def test_down_node_is_reported_not_raised(self):
        async def body():
            async with _traced_cluster() as cluster:
                client = cluster.client()
                await _storm(client)
                victim = cluster.nodes["node2"]
                await victim.stop()
                summary = await client.cstatus_summary()
                assert summary["nodes"]["node2"].get("unreachable")
                assert "node2" in summary["unreachable"]
                # totals still cover the reachable nodes
                assert summary["totals"]["data_capacity"] == 2 * 128
        run(body())

    def test_metrics_fans_in_prometheus_text(self):
        async def body():
            async with _traced_cluster() as cluster:
                client = cluster.client()
                await _storm(client, writes=10)
                metrics = await client.metrics()
                assert set(metrics) == {"node0", "node1", "node2"}
                assert all("repro_" in text for text in metrics.values())
                # the pending-INVAL debt gauge is exported per node
                assert any("repro_cluster_pending_invals" in text
                           for text in metrics.values())
        run(body())

    def test_trace_drain_is_disjoint(self):
        async def body():
            async with _traced_cluster() as cluster:
                client = cluster.client()
                await _storm(client, writes=10)
                await asyncio.sleep(0.05)
                first = await client.traces()
                assert sum(len(v) for v in first.values()) > 0
                again = await client.traces()
                # the ring was cleared by the first drain; the only new
                # events are the drains' own request spans
                assert sum(len(v) for v in again.values()) <= 2 * len(again)
        run(body())


class TestTraceDeterminism:
    """Satellite (c): identical storms => identical causal topology."""

    async def _one_run(self):
        cluster = _traced_cluster(seed=2013)
        async with cluster:
            client = cluster.client()
            await _storm(client, writes=40, keys=6)
        # collect in-process after stop(): every span has landed, no
        # drain race can cut the tree mid-branch
        node_events = {
            name: node.obs.tracer.to_chrome()["traceEvents"]
            for name, node in cluster.nodes.items()
        }
        return merge_node_traces(node_events, time_unit="s")

    def test_two_runs_same_topology_zero_orphans(self):
        doc1 = run(self._one_run())
        doc2 = run(self._one_run())
        topo1, topo2 = trace_topology(doc1), trace_topology(doc2)
        assert topo1 == topo2
        assert not any(p.startswith(("ORPHAN/", "CYCLE/")) for p in topo1)
        assert validate_chrome_trace(doc1, causal=True) == []
        # the storm reaches every trace edge: a cross-node INVAL chain
        # terminating in a replica drop must appear in the topology
        assert any("ReplicaInvalidated" in p and p.count("INVAL") >= 2
                   for p in topo1)
        assert doc1["otherData"]["cross_node_edges"] > 0

    def test_obs_off_cluster_emits_no_trace_events(self):
        async def body():
            cluster = LocalCluster(num_nodes=2, data_capacity_per_node=64,
                                   replicas=2)
            async with cluster:
                client = cluster.client()
                await _storm(client, writes=10)
                drains = await client.traces()
                assert all(events == [] for events in drains.values())
        run(body())


# ---------------------------------------------------------------------------
# CLI surface: obs collect / explain round trip
# ---------------------------------------------------------------------------


class TestObsCliRoundTrip:
    def _write_node_files(self, tmp_path):
        files = []
        for node, events in {
            "node0": [_ev("SET", span="a.1", key="hot"),
                      _ev("INVAL", span="a.2", parent="a.1", key="hot")],
            "node1": [_ev("INVAL", span="b.1", parent="a.2", key="hot")],
        }.items():
            path = tmp_path / f"{node}.jsonl"
            path.write_text(
                "".join(json.dumps(e) + "\n" for e in events),
                encoding="utf-8",
            )
            files.append(str(path))
        return files

    def test_collect_then_validate_then_explain(self, tmp_path, capsys):
        from repro.obs.cli import main

        files = self._write_node_files(tmp_path)
        out = str(tmp_path / "merged.json")
        assert main(["obs", "collect", *files, "--out", out]) == 0
        assert main(["obs", "validate", "--causal", out]) == 0
        assert main(["explain", "--key", "hot", out]) == 0
        captured = capsys.readouterr().out
        assert "cross-node edge" in captured
        assert "causally complete" in captured
        assert "key 'hot'" in captured

    def test_explain_unknown_key_exits_nonzero(self, tmp_path, capsys):
        from repro.obs.cli import main

        files = self._write_node_files(tmp_path)
        out = str(tmp_path / "merged.json")
        assert main(["obs", "collect", *files, "--out", out]) == 0
        assert main(["explain", "--key", "nope", out]) == 1
        assert "no events recorded" in capsys.readouterr().out

    def test_collect_rejects_orphan_traces(self, tmp_path):
        from repro.obs.cli import main

        bad = tmp_path / "node9.jsonl"
        bad.write_text(
            json.dumps(_ev("INVAL", span="z.1", parent="ghost")) + "\n",
            encoding="utf-8",
        )
        out = str(tmp_path / "merged.json")
        assert main(["obs", "collect", str(bad), "--out", out]) == 1
