"""Tests for ``repro lint`` / ``repro check-protocol`` as CLI commands.

The acceptance contract: both exit 0 on the merged tree, exit nonzero
when a violation is present, and emit machine-readable JSON on demand.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.__main__ import main
from repro.devtools import cli as devtools_cli
from repro.devtools import protocol_check
from repro.devtools.lint import RULES

#: the real source tree, wherever the package was imported from
SRC_DIR = Path(repro.__file__).resolve().parent


class TestLintCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC_DIR)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "replacement" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrng = random.Random()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "seeded.py" in out

    def test_json_output_parses(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "cache" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert [f["rule"] for f in report["findings"]] == ["REP002"]

    def test_select_runs_only_chosen_rules(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "cache" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main(
            ["lint", str(tmp_path), "--select", "rep007"]
        ) == 0  # case-insensitive select; REP002 not run
        assert main(["lint", str(tmp_path), "--select", "REP002"]) == 1
        capsys.readouterr()

    def test_unknown_select_code_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--select", "REP999"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


class TestAnalyzeCommand:
    def test_clean_tree_with_shipped_baseline_exits_zero(self, capsys):
        # the exact invocation CI gates on (see .github/workflows/ci.yml)
        baseline = SRC_DIR.parent.parent / "analyze-baseline.json"
        if not baseline.exists():
            pytest.skip("not running from a repo checkout")
        assert main(
            ["analyze", str(SRC_DIR), "--format", "json",
             "--baseline", str(baseline)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []


class TestCheckProtocolCommand:
    def test_shipped_tables_exit_zero(self, capsys):
        assert main(["check-protocol"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out and "TO-MOSI" in out

    def test_json_output_parses(self, capsys):
        assert main(["check-protocol", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert {p["name"] for p in report["protocols"]} == {
            "TO-MSI", "TO-MOSI",
        }

    def test_cluster_flag_adds_the_distributed_table(self, capsys):
        assert main(["check-protocol", "--cluster"]) == 0
        assert "TO-MSI-cluster" in capsys.readouterr().out

    def test_cluster_json_output_parses(self, capsys):
        assert main(["check-protocol", "--cluster", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert {p["name"] for p in report["protocols"]} == {
            "TO-MSI", "TO-MOSI", "TO-MSI-cluster",
        }
        assert report["findings"] == []

    def test_seeded_violation_exits_nonzero(self, monkeypatch, capsys):
        from repro.coherence.states import Event, State

        spec = protocol_check.base_spec()
        table = dict(spec.table)
        del table[(State.TO, Event.GETS)]
        broken = protocol_check.with_table(spec, table)
        monkeypatch.setattr(
            protocol_check, "all_specs", lambda cluster=False: [broken]
        )
        assert main(["check-protocol"]) == 1
        assert "unhandled" in capsys.readouterr().out


class TestDispatch:
    def test_list_advertises_static_checks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in devtools_cli.DEVTOOLS_COMMANDS:
            assert name in out

    def test_default_paths_fall_back_sensibly(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert devtools_cli.default_lint_paths() == ["."]
        (tmp_path / "src").mkdir()
        assert devtools_cli.default_lint_paths() == ["src"]
