"""Tests for the repository tools (results comparison, API doc generation)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import compare_results  # noqa: E402


SAMPLE_A = """
Fig. 9: reuse cache vs NCID (paper gains)
config              RC     NCID   RC gain
------------------  -----  -----  -------
8/4                 1.151  0.976  +17.4%
8/2                 1.101  0.932  +16.9%
"""

SAMPLE_B = """
Fig. 9: reuse cache vs NCID (paper gains)
config              RC     NCID   RC gain
------------------  -----  -----  -------
8/4                 1.150  0.975  +17.5%
8/2                 1.300  0.932  +16.9%
"""


class TestParse:
    def test_rows_keyed_by_section_and_label(self, tmp_path):
        f = tmp_path / "a.txt"
        f.write_text(SAMPLE_A)
        rows = compare_results.parse_results(f)
        assert ("Fig. 9", "8/4") in rows
        assert rows[("Fig. 9", "8/4")][0] == 1.151

    def test_separators_skipped(self, tmp_path):
        f = tmp_path / "a.txt"
        f.write_text(SAMPLE_A)
        for (_, label) in compare_results.parse_results(f):
            assert not set(label) <= {"-"}


class TestCompare:
    def test_detects_drift(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        a.write_text(SAMPLE_A)
        b.write_text(SAMPLE_B)
        drifted = list(
            compare_results.compare(
                compare_results.parse_results(a),
                compare_results.parse_results(b),
                tol=0.02,
            )
        )
        labels = {key[1] for key, *_ in drifted}
        assert "8/2" in labels  # 1.101 -> 1.300 is ~18%
        assert "8/4" not in labels  # sub-tolerance noise

    def test_main_exit_codes(self, tmp_path, capsys):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        a.write_text(SAMPLE_A)
        b.write_text(SAMPLE_A)
        assert compare_results.main([str(a), str(b)]) == 0
        b.write_text(SAMPLE_B)
        assert compare_results.main([str(a), str(b)]) == 1
        assert "drift" in capsys.readouterr().out
