"""Tests for the memory-traffic study."""

from repro.experiments import ExperimentParams
from repro.experiments.traffic import format_traffic, run_traffic

TINY = ExperimentParams(n_workloads=1, n_refs=2000)


class TestTraffic:
    def test_structure_and_invariants(self):
        r = run_traffic(TINY)
        assert "conv-8MB-lru" in r and "RC-4/1" in r
        base = r["conv-8MB-lru"]
        assert base["reloads_pki"] == 0.0  # conventional never reloads
        for label, t in r.items():
            assert t["reads_pki"] > 0
            assert t["reloads_pki"] <= t["reads_pki"]

    def test_reuse_cache_reads_more(self):
        r = run_traffic(TINY)
        assert r["RC-4/1"]["reads_pki"] > r["conv-8MB-lru"]["reads_pki"] * 0.99
        assert r["RC-4/1"]["reloads_pki"] > 0

    def test_format(self):
        assert "traffic vs baseline" in format_traffic(run_traffic(TINY))
