"""Tests for the reuse cache — the paper's core contribution."""

import random

import pytest

from repro.coherence import State
from repro.core.reuse_cache import ReuseCache


def make(tag_lines=32, tag_assoc=4, data_lines=8, data_assoc="full", cores=4, **kw):
    return ReuseCache(
        tag_lines,
        tag_assoc,
        data_lines,
        data_assoc=data_assoc,
        num_cores=cores,
        rng=random.Random(0),
        **kw,
    )


class TestGeometry:
    def test_data_cannot_exceed_tags(self):
        with pytest.raises(ValueError):
            make(tag_lines=8, tag_assoc=2, data_lines=16)

    def test_data_sets_cannot_exceed_tag_sets(self):
        # 32 tags 4-way -> 8 sets; 16 data lines 1-way -> 16 sets
        with pytest.raises(ValueError):
            make(data_lines=16, data_assoc=1)

    def test_full_assoc_means_one_set(self):
        rc = make(data_lines=8, data_assoc="full")
        assert rc.data_sets == 1 and rc.data_assoc == 8

    def test_default_data_policy(self):
        assert make(data_assoc="full").data_policy_name == "clock"
        assert make(data_assoc=2).data_policy_name == "nru"


class TestSelectiveAllocation:
    """Section 3: first access = tag only; second access = data."""

    def test_first_access_allocates_tag_only(self):
        rc = make()
        res = rc.access(0x100, 0, False, 0)
        assert res.source == "dram" and res.dram_reads == 1
        assert rc.state_of(0x100) is State.TO
        assert rc.data_fills == 0
        assert rc.tag_fills == 1

    def test_reuse_allocates_data(self):
        rc = make()
        rc.access(0x100, 0, False, 0)
        rc.notify_private_eviction(0x100, 0, False)  # left private caches
        res = rc.access(0x100, 0, False, 1)
        assert rc.state_of(0x100) is State.S
        assert rc.data_fills == 1
        assert rc.to_hits == 1
        # no private copy existed: the line is re-read from memory
        assert res.source == "dram" and rc.reuse_reloads == 1

    def test_reuse_from_peer_avoids_memory(self):
        rc = make()
        rc.access(0x100, 0, False, 0)  # core 0 holds the line privately
        res = rc.access(0x100, 1, False, 1)  # core 1 re-references: reuse
        assert res.source == "peer"
        assert rc.peer_transfers == 1 and rc.reuse_reloads == 0
        assert rc.state_of(0x100) is State.S

    def test_write_reuse_goes_modified(self):
        rc = make()
        rc.access(0x100, 0, False, 0)
        res = rc.access(0x100, 1, True, 1)
        assert rc.state_of(0x100) is State.M
        assert res.coherence_invals == (0,)

    def test_third_access_is_data_hit(self):
        rc = make()
        rc.access(0x100, 0, False, 0)
        rc.access(0x100, 1, False, 1)
        res = rc.access(0x100, 2, False, 2)
        assert res.source == "llc" and res.dram_reads == 0
        assert rc.data_hits == 1

    def test_streaming_lines_never_pollute_data_array(self):
        rc = make(tag_lines=64, tag_assoc=4, data_lines=8)
        for a in range(40):  # one-pass scan
            rc.access(a, 0, False, a)
            rc.notify_private_eviction(a, 0, False)
        assert rc.data_fills == 0
        assert rc.fraction_not_entered() == 1.0

    def test_fraction_not_entered_matches_counters(self):
        rc = make()
        rc.access(1, 0, False, 0)
        rc.access(2, 0, False, 1)
        rc.access(1, 1, False, 2)  # reuse
        assert rc.fraction_not_entered() == pytest.approx(0.5)


class TestDataReplacement:
    def test_data_victim_demoted_to_tag_only(self):
        rc = make(tag_lines=32, tag_assoc=4, data_lines=2)
        # fill the 2-entry data array with reused lines
        for a in (0x10, 0x11, 0x12):
            rc.access(a, 0, False, 0)
            rc.notify_private_eviction(a, 0, False)
            rc.access(a, 0, False, 1)  # reuse -> data alloc
            rc.notify_private_eviction(a, 0, False)
        data_resident = set(rc.resident_data_lines())
        assert len(data_resident) == 2
        demoted = {0x10, 0x11, 0x12} - data_resident
        assert len(demoted) == 1
        assert rc.state_of(demoted.pop()) is State.TO

    def test_dirty_data_victim_written_back(self):
        rc = make(tag_lines=32, tag_assoc=4, data_lines=1)
        rc.access(0x10, 0, True, 0)
        rc.notify_private_eviction(0x10, 0, dirty=True)  # TO: to memory
        rc.access(0x10, 0, True, 1)  # reuse -> data alloc (M)
        rc.notify_private_eviction(0x10, 0, dirty=True)  # absorbed: data dirty
        # allocate another reused line: evicts 0x10's data, dirty
        rc.access(0x20, 0, False, 2)
        rc.notify_private_eviction(0x20, 0, False)
        res = rc.access(0x20, 0, False, 3)
        assert 0x10 in res.writebacks

    def test_demoted_line_can_be_reloaded(self):
        rc = make(tag_lines=32, tag_assoc=4, data_lines=1)
        for a in (0x10, 0x20):
            rc.access(a, 0, False, 0)
            rc.notify_private_eviction(a, 0, False)
            rc.access(a, 0, False, 1)
            rc.notify_private_eviction(a, 0, False)
        assert rc.state_of(0x10) is State.TO
        rc.access(0x10, 0, False, 2)  # reuse detected again
        assert rc.state_of(0x10) is State.S
        assert rc.data_fills == 3


class TestTagReplacement:
    def test_tag_eviction_frees_data_entry(self):
        rc = make(tag_lines=8, tag_assoc=2, data_lines=4)
        # make line 0 a reused (tag+data) line, then leave private caches
        rc.access(0, 0, False, 0)
        rc.notify_private_eviction(0, 0, False)
        rc.access(0, 0, False, 1)
        rc.notify_private_eviction(0, 0, False)
        assert 0 in set(rc.resident_data_lines())
        # two more lines in set 0 (4 sets: addresses = 0 mod 4) force a tag evict
        for a in (4, 8):
            rc.access(a, 0, False, 2)
            rc.notify_private_eviction(a, 0, False)
        assert rc.check_pointer_consistency()
        # line 0 was reused so NRR protects it; victims are the fresh tags
        assert rc.state_of(0) is not State.I

    def test_tag_eviction_back_invalidates(self):
        rc = make(tag_lines=8, tag_assoc=2, data_lines=4)
        rc.access(0, 0, False, 0)
        rc.access(4, 1, False, 1)
        res = rc.access(8, 2, False, 2)
        assert len(res.inclusion_invals) == 1

    def test_nrr_protects_private_lines(self):
        rc = make(tag_lines=8, tag_assoc=2, data_lines=4)
        rc.access(0, 0, False, 0)  # still private
        rc.access(4, 1, False, 1)
        rc.notify_private_eviction(4, 1, False)  # not private any more
        rc.access(8, 2, False, 2)
        assert rc.state_of(0) is not State.I  # protected
        assert rc.state_of(4) is State.I  # victimised


class TestCoherenceUpcalls:
    def test_putx_in_tag_only_goes_to_memory(self):
        rc = make()
        rc.access(0x10, 0, True, 0)
        wbs = rc.notify_private_eviction(0x10, 0, dirty=True)
        assert wbs == (0x10,)
        assert rc.state_of(0x10) is State.TO

    def test_putx_with_data_absorbed(self):
        rc = make()
        rc.access(0x10, 0, True, 0)
        rc.access(0x10, 1, True, 1)  # reuse -> data allocated
        wbs = rc.notify_private_eviction(0x10, 1, dirty=True)
        assert wbs == ()
        assert rc.state_of(0x10) is State.M

    def test_upgrade_in_to_keeps_tag_only(self):
        rc = make()
        rc.access(0x10, 0, False, 0)
        invals = rc.upgrade(0x10, 0)
        assert invals == ()
        assert rc.state_of(0x10) is State.TO
        assert rc.data_fills == 0

    def test_upgrade_in_s_promotes(self):
        rc = make()
        rc.access(0x10, 0, False, 0)
        rc.access(0x10, 1, False, 1)  # S with data
        invals = rc.upgrade(0x10, 1)
        assert invals == (0,)
        assert rc.state_of(0x10) is State.M


class TestInvariants:
    def test_pointer_consistency_under_random_traffic(self):
        rc = make(tag_lines=32, tag_assoc=4, data_lines=8, data_assoc=2)
        rng = random.Random(7)
        private = {c: set() for c in range(4)}
        for step in range(2000):
            core = rng.randrange(4)
            addr = rng.randrange(48)
            res = rc.access(addr, core, rng.random() < 0.3, step)
            private[core].add(addr)
            for victim in res.coherence_invals:
                private[victim].discard(addr)
            for victim, vaddr in res.inclusion_invals:
                private[victim].discard(vaddr)
            # occasionally evict from a private cache
            if rng.random() < 0.4 and private[core]:
                evict = rng.choice(sorted(private[core]))
                private[core].discard(evict)
                rc.notify_private_eviction(evict, core, rng.random() < 0.5)
            if step % 100 == 0:
                assert rc.check_pointer_consistency()
        assert rc.check_pointer_consistency()

    def test_data_occupancy_bounded(self):
        rc = make(tag_lines=64, tag_assoc=4, data_lines=4)
        for a in range(64):
            rc.access(a, 0, False, a)
            rc.notify_private_eviction(a, 0, False)
            rc.access(a, 0, False, a)
            rc.notify_private_eviction(a, 0, False)
        assert rc.data_occupancy() <= 4
