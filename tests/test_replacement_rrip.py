"""Tests for SRRIP / BRRIP / TA-DRRIP."""

import random

from repro.replacement import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.replacement.rrip import RRPV_LONG, RRPV_MAX


class TestSRRIP:
    def test_fill_inserts_long(self):
        p = SRRIPPolicy(1, 4, rng=random.Random(0))
        p.on_fill(0, 0)
        assert p._rrpv[0][0] == RRPV_LONG

    def test_hit_promotes_to_zero(self):
        p = SRRIPPolicy(1, 4, rng=random.Random(0))
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        assert p._rrpv[0][0] == 0

    def test_victim_prefers_distant(self):
        p = SRRIPPolicy(1, 4, rng=random.Random(0))
        for way in range(3):
            p.on_fill(0, way)
        # way 3 untouched: rrpv stays at max (distant)
        assert p.victim(0, [0, 1, 2, 3]) == 3

    def test_aging_when_no_distant_line(self):
        p = SRRIPPolicy(1, 2, rng=random.Random(0))
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 1)
        victim = p.victim(0, [0, 1])
        assert victim == 0  # first candidate to reach RRPV_MAX after aging
        assert max(p._rrpv[0]) == RRPV_MAX

    def test_scan_resistance(self):
        """A line that keeps being reused survives bursts of never-hit fills."""
        p = SRRIPPolicy(1, 4, rng=random.Random(0))
        p.on_fill(0, 0)
        for _ in range(6):
            p.on_hit(0, 0)  # periodically reused: rrpv pinned at 0
            for way in (1, 2, 3):
                p.on_fill(0, way)
            assert p.victim(0, [0, 1, 2, 3]) != 0


class TestBRRIP:
    def test_fills_mostly_distant(self):
        p = BRRIPPolicy(1, 1, rng=random.Random(5))
        distant = 0
        trials = 3200
        for _ in range(trials):
            p.on_fill(0, 0)
            if p._rrpv[0][0] == RRPV_MAX:
                distant += 1
        assert distant / trials > 0.93
        assert distant < trials  # epsilon occasionally inserts long


class TestDRRIP:
    def test_leader_sets_per_thread(self):
        p = DRRIPPolicy(64, 4, rng=random.Random(0), num_threads=8)
        assert p._leader_role(0, 0) == "srrip"
        assert p._leader_role(1, 0) == "brrip"
        assert p._leader_role(2, 1) == "srrip"
        assert p._leader_role(5, 0) == "follower"

    def test_psel_is_per_thread(self):
        p = DRRIPPolicy(64, 4, rng=random.Random(0), num_threads=8)
        start = p._psel[0]
        p.on_miss(0, thread=0)  # SRRIP leader of thread 0
        assert p._psel[0] == start + 1
        assert p._psel[1] == start

    def test_follower_uses_winner(self):
        p = DRRIPPolicy(64, 4, rng=random.Random(0), num_threads=8)
        p._psel[0] = 0  # BRRIP missed a lot -> SRRIP wins for thread 0
        p.on_fill(20, 0, thread=0)  # set 20 is a follower
        assert p._rrpv[20][0] == RRPV_LONG

    def test_brrip_leader_inserts_distant(self):
        p = DRRIPPolicy(64, 4, rng=random.Random(3), num_threads=8)
        distant = 0
        for _ in range(320):
            p.on_fill(1, 0, thread=0)  # set 1: BRRIP leader of thread 0
            if p._rrpv[1][0] == RRPV_MAX:
                distant += 1
        assert distant > 280

    def test_saturating_psel(self):
        p = DRRIPPolicy(64, 4, rng=random.Random(0), num_threads=2)
        for _ in range(5000):
            p.on_miss(0, thread=0)
        assert p._psel[0] == p._psel_max
        for _ in range(5000):
            p.on_miss(1, thread=0)
        assert p._psel[0] == 0
