"""Tests for the V-way cache comparator and Reuse Replacement."""

import random

import pytest

from repro.cache.vway import VWayCache
from repro.coherence import State
from repro.replacement import ReuseReplacementPolicy


def make(data_lines=16, base_assoc=2, cores=4):
    return VWayCache(data_lines, base_assoc=base_assoc, num_cores=cores,
                     rng=random.Random(0))


class TestReuseReplacement:
    def test_fresh_lines_evicted_first(self):
        p = ReuseReplacementPolicy(1, 4, rng=random.Random(0))
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 0)
        assert p.victim(0, [0, 1, 2, 3]) == 1  # way 0 has a counter, 1 is next

    def test_counters_earn_residency(self):
        p = ReuseReplacementPolicy(1, 2, rng=random.Random(0))
        p.on_fill(0, 0)
        for _ in range(3):
            p.on_hit(0, 0)  # saturate way 0
        p.on_fill(0, 1)
        # way 1 (counter 0) goes first, repeatedly
        assert p.victim(0, [0, 1]) == 1
        p.on_fill(0, 1)
        assert p.victim(0, [0, 1]) == 1

    def test_sweep_decrements(self):
        p = ReuseReplacementPolicy(1, 2, rng=random.Random(0))
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 1)
        victim = p.victim(0, [0, 1])  # both at 1: sweep decrements then picks
        assert victim in (0, 1)


class TestVWayStructure:
    def test_doubled_tags(self):
        vw = make(data_lines=16, base_assoc=2)
        assert vw.tag_lines == 32
        assert vw.tag_assoc == 4  # double the base associativity
        assert vw.data_sets == 1  # global (fully associative) data

    def test_every_fill_allocates_data(self):
        vw = make()
        for a in range(10):
            vw.access(a, 0, False, a)
        assert vw.data_fills == vw.tag_fills == 10
        assert vw.check_no_tag_only_states()

    def test_demand_associativity(self):
        """A hot set can hold more lines than its data share: with 8 sets
        and 2 base ways, one set can use 4 tag ways."""
        vw = make(data_lines=16, base_assoc=2)
        tag_sets = vw.tags.num_sets  # 8
        addrs = [i * tag_sets for i in range(4)]  # all map to set 0
        for t, a in enumerate(addrs):
            vw.access(a, 0, False, t)
            vw.notify_private_eviction(a, 0, False)
        assert all(vw.state_of(a) is not State.I for a in addrs)

    def test_global_victim_invalidates_tag(self):
        vw = make(data_lines=4, base_assoc=2)
        for a in range(5):  # exceed global data capacity
            vw.access(a, 0, False, a)
            vw.notify_private_eviction(a, 0, False)
        resident = sum(1 for a in range(5) if vw.state_of(a) is not State.I)
        assert resident == 4  # exactly the data capacity
        assert vw.check_no_tag_only_states()
        assert vw.check_pointer_consistency()

    def test_global_victim_back_invalidates_privates(self):
        vw = make(data_lines=4, base_assoc=2)
        for a in range(4):
            vw.access(a, 0, False, a)
        res = vw.access(4, 1, False, 5)
        assert len(res.inclusion_invals) == 1

    def test_dirty_global_victim_written_back(self):
        vw = make(data_lines=2, base_assoc=2)
        vw.access(0, 0, True, 0)
        vw.notify_private_eviction(0, 0, dirty=True)  # absorbed by data
        vw.access(1, 0, False, 1)
        vw.notify_private_eviction(1, 0, False)
        res = vw.access(2, 0, False, 2)  # reclaims a data entry
        if vw.state_of(0) is State.I:  # line 0 was the global victim
            assert 0 in res.writebacks

    def test_hits_after_fill(self):
        vw = make()
        vw.access(7, 0, False, 0)
        res = vw.access(7, 1, False, 1)
        assert res.source == "llc"
        assert vw.data_hits == 1

    def test_prefetch_allocates_without_tag_only(self):
        vw = make()
        vw.prefetch(9, 0, 0)
        assert vw.state_of(9) is State.S
        assert vw.check_no_tag_only_states()
        assert vw.tag_misses == 0  # prefetch is not a demand miss

    def test_invariants_under_traffic(self):
        vw = make(data_lines=8, base_assoc=2)
        rng = random.Random(5)
        for step in range(1500):
            core = rng.randrange(4)
            addr = rng.randrange(40)
            vw.access(addr, core, rng.random() < 0.3, step)
            if rng.random() < 0.5:
                try:
                    vw.notify_private_eviction(addr, core, rng.random() < 0.4)
                except KeyError:
                    pass  # evicted by a global reclaim in between
            if step % 300 == 0:
                assert vw.check_pointer_consistency()
                assert vw.check_no_tag_only_states()
        assert vw.check_pointer_consistency()


class TestVWayInSystem:
    def test_runs_end_to_end(self):
        from repro.hierarchy.config import LLCSpec, SystemConfig
        from repro.hierarchy.system import run_workload
        from repro.workloads.mixes import EXAMPLE_MIX, build_workload

        wl = build_workload(EXAMPLE_MIX, 2000, seed=6)
        result = run_workload(SystemConfig(llc=LLCSpec.vway(8)), wl)
        assert result.config_label == "VW-8MB"
        assert result.performance > 0
        s = result.llc_stats
        assert s["data_fills"] == s["tag_fills"]

    def test_spec_label(self):
        from repro.hierarchy.config import LLCSpec

        assert LLCSpec.vway(8).label == "VW-8MB"
