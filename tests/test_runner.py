"""Tests for repro.runner: cells, cache keys, the engine and its guarantees.

The load-bearing property is byte-identity: a batch run in parallel, or
replayed from the content-addressed cache, must produce results whose
pickled bytes equal the serial in-process run's.  Everything else —
deterministic workload rebuilding, key invalidation, crash-tolerant cache
entries, stats/obs accounting — exists to keep that property cheap.
"""

import pickle

import numpy as np
import pytest

from repro.experiments.common import BASELINE_SPEC, ExperimentParams
from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.obs import Observability
from repro.runner import (
    Cell,
    ResultCache,
    Runner,
    WorkloadRef,
    as_workload_ref,
    cell_key,
    code_fingerprint,
    execute_cell,
)

TINY = ExperimentParams(n_workloads=2, n_refs=1500)


def tiny_cells(spec=BASELINE_SPEC, params=TINY):
    return [params.cell(spec, ref) for ref in params.workload_refs()]


def result_bytes(results):
    return [pickle.dumps(r) for r in results]


class TestWorkloadRef:
    def test_mix_rebuilds_identically(self):
        ref = TINY.workload_refs()[0]
        a, b = ref.build(), ref.build()
        assert a.num_cores == b.num_cores
        for ta, tb in zip(a.traces, b.traces):
            assert np.array_equal(ta.addrs, tb.addrs)

    def test_refs_match_eager_workloads(self):
        # the declarative suite is the same suite workloads() materialises
        eager = TINY.workloads()
        rebuilt = [ref.build() for ref in TINY.workload_refs()]
        for wa, wb in zip(eager, rebuilt):
            for ta, tb in zip(wa.traces, wb.traces):
                assert np.array_equal(ta.addrs, tb.addrs)

    def test_key_dict_is_declarative(self):
        ref = TINY.workload_refs()[0]
        key = ref.key_dict()
        assert key["kind"] == "mix"
        assert "payload" not in key

    def test_custom_workload_digest(self):
        wl = TINY.workloads()[0]
        ref = as_workload_ref(wl)
        assert ref.kind == "custom"
        assert ref.digest
        assert ref.key_dict() == {"kind": "custom", "digest": ref.digest}
        assert ref.build() is wl

    def test_as_workload_ref_passthrough(self):
        ref = TINY.workload_refs()[0]
        assert as_workload_ref(ref) is ref


class TestCellKey:
    def test_stable_for_equal_cells(self):
        a, b = tiny_cells()[0], tiny_cells()[0]
        assert a == b
        assert cell_key(a) == cell_key(b)

    def test_config_change_invalidates(self):
        base = tiny_cells(BASELINE_SPEC)[0]
        other = tiny_cells(LLCSpec.reuse(4, 1))[0]
        assert cell_key(base) != cell_key(other)

    def test_flag_change_invalidates(self):
        ref = TINY.workload_refs()[0]
        plain = TINY.cell(BASELINE_SPEC, ref)
        recording = TINY.cell(BASELINE_SPEC, ref, record_generations=True)
        assert cell_key(plain) != cell_key(recording)

    def test_fingerprint_is_part_of_the_key(self):
        cell = tiny_cells()[0]
        assert cell_key(cell, "aaa") != cell_key(cell, "bbb")
        assert cell_key(cell) == cell_key(cell, code_fingerprint())

    def test_fingerprint_shape(self):
        fp = code_fingerprint()
        assert len(fp) == 64 and int(fp, 16) >= 0


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = tiny_cells()[0]
        key = cell_key(cell)
        assert cache.get(key) is None
        result = execute_cell(cell)
        cache.put(key, result)
        assert cache.contains(key)
        assert len(cache) == 1
        replay = cache.get(key)
        assert pickle.dumps(replay) == pickle.dumps(result)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(tiny_cells()[0])
        cache.put(key, execute_cell(tiny_cells()[0]))
        entry = cache._entry_path(key)
        entry.write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_wrong_key_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = tiny_cells()
        key_a, key_b = cell_key(cells[0]), cell_key(cells[1])
        cache.put(key_a, execute_cell(cells[0]))
        # simulate a hash collision / copied file: payload key mismatch
        cache._entry_path(key_b).parent.mkdir(parents=True, exist_ok=True)
        cache._entry_path(key_a).rename(cache._entry_path(key_b))
        assert cache.get(key_b) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for cell in tiny_cells():
            cache.put(cell_key(cell), execute_cell(cell))
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRunnerDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        cells = tiny_cells(BASELINE_SPEC) + tiny_cells(LLCSpec.reuse(4, 1))
        serial = Runner().run_cells(cells)
        parallel = Runner(parallel=4).run_cells(cells)
        assert result_bytes(serial) == result_bytes(parallel)

    def test_cache_replay_matches_byte_for_byte(self, tmp_path):
        cells = tiny_cells()
        cold = Runner(cache=ResultCache(tmp_path)).run_cells(cells)
        warm = Runner(cache=ResultCache(tmp_path)).run_cells(cells)
        assert result_bytes(cold) == result_bytes(warm)

    def test_results_in_submission_order(self):
        specs = [BASELINE_SPEC, LLCSpec.reuse(4, 1), LLCSpec.conventional(4, "nrr")]
        cells = [c for s in specs for c in tiny_cells(s)]
        results = Runner(parallel=3).run_cells(cells)
        rerun = [execute_cell(c) for c in cells]
        assert result_bytes(results) == result_bytes(rerun)


class TestRunnerCache:
    def test_hit_skips_recompute(self, tmp_path):
        cells = tiny_cells()
        first = Runner(cache=ResultCache(tmp_path))
        first.run_cells(cells)
        assert (first.stats.run, first.stats.cached) == (2, 0)
        second = Runner(cache=ResultCache(tmp_path))
        second.run_cells(cells)
        assert (second.stats.run, second.stats.cached) == (0, 2)
        assert second.stats.hit_rate == 1.0
        assert second.stats.seconds == 0.0

    def test_config_change_recomputes(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        runner.run_cells(tiny_cells(BASELINE_SPEC))
        runner.run_cells(tiny_cells(LLCSpec.reuse(4, 1)))
        assert (runner.stats.run, runner.stats.cached) == (4, 0)

    def test_force_recomputes_and_refreshes(self, tmp_path):
        cells = tiny_cells()
        Runner(cache=ResultCache(tmp_path)).run_cells(cells)
        forced = Runner(cache=ResultCache(tmp_path), force=True)
        forced.run_cells(cells)
        assert (forced.stats.run, forced.stats.cached) == (2, 0)
        # forced results were re-published: a third runner still hits
        third = Runner(cache=ResultCache(tmp_path))
        third.run_cells(cells)
        assert third.stats.cached == 2

    def test_uncached_runner_computes_every_time(self):
        runner = Runner()
        cells = tiny_cells()
        runner.run_cells(cells)
        runner.run_cells(cells)
        assert (runner.stats.run, runner.stats.cached) == (4, 0)


class TestRunnerFailuresAndAccounting:
    def test_worker_failure_names_the_cell(self):
        bad = Cell(
            config=SystemConfig(llc=BASELINE_SPEC),
            workload=WorkloadRef(kind="no-such-kind"),
        )
        with pytest.raises(RuntimeError, match="failed"):
            Runner().run_cells([bad])

    def test_progress_callback_sees_every_cell(self, tmp_path):
        events = []
        cells = tiny_cells()
        runner = Runner(
            cache=ResultCache(tmp_path),
            progress=lambda done, total, cell, status, s: events.append(
                (done, total, status)
            ),
        )
        runner.run_cells(cells)
        runner.run_cells(cells)
        assert events == [
            (1, 2, "run"), (2, 2, "run"), (1, 2, "cached"), (2, 2, "cached")
        ]

    def test_obs_counters_published(self):
        obs = Observability.enabled()
        runner = Runner(obs=obs)
        runner.run_cells(tiny_cells())
        family = obs.registry.snapshot()["repro_runner_cells_total"]
        run_series = [
            s for s in family["series"] if s["labels"] == {"status": "run"}
        ]
        assert run_series and run_series[0]["value"] == 2
        seconds = obs.registry.snapshot()["repro_runner_cell_seconds"]
        assert seconds["series"][0]["count"] == 2

    def test_default_runner_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = Runner.default()
        assert runner.parallel == 3
        assert runner.cache is not None and runner.cache.path == tmp_path

    def test_default_runner_rejects_negative_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "-2")
        with pytest.raises(ValueError, match="REPRO_PARALLEL"):
            Runner.default()


class TestResourceAccounting:
    def test_executed_cells_account_resources(self):
        runner = Runner()
        cells = tiny_cells()
        runner.run_cells(cells)
        stats = runner.stats
        assert stats.cpu_seconds > 0
        assert stats.peak_rss_kb > 0
        assert stats.refs > 0
        assert stats.refs_per_s > 0
        assert len(stats.cells) == len(cells)
        for record in stats.cells:
            assert record["status"] == "run"
            assert record["wall_s"] > 0
            assert record["cpu_s"] > 0
            assert record["refs"] > 0

    def test_cache_replay_reports_original_wall_time(self, tmp_path):
        # regression: cache hits used to report 0.0s, hiding what a warm
        # run actually saved
        cells = tiny_cells()
        cold = Runner(cache=ResultCache(tmp_path))
        cold.run_cells(cells)
        cold_wall = cold.stats.seconds
        warm = Runner(cache=ResultCache(tmp_path))
        warm.run_cells(cells)
        assert warm.stats.cached == len(cells)
        assert warm.stats.seconds == 0.0
        assert warm.stats.cached_wall_s == pytest.approx(cold_wall)
        for record in warm.stats.cells:
            assert record["status"] == "cached"
            assert record["cached_wall_s"] > 0

    def test_stats_to_dict_is_the_stats_json_payload(self, tmp_path):
        import json

        cells = tiny_cells()
        runner = Runner(cache=ResultCache(tmp_path))
        runner.run_cells(cells)
        payload = runner.stats.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        for key in ("run", "cached", "failed", "total", "hit_rate",
                    "compute_seconds", "cpu_seconds", "cached_wall_s",
                    "peak_rss_kb", "refs", "refs_per_s", "cells"):
            assert key in payload
        assert payload["run"] == len(cells)

    def test_parallel_workers_measure_in_their_own_process(self, tmp_path):
        cells = tiny_cells(BASELINE_SPEC) + tiny_cells(LLCSpec.reuse(4, 1))
        runner = Runner(parallel=2)
        runner.run_cells(cells)
        # every cell carries worker-side measurements even under the pool
        assert all(r["cpu_s"] > 0 for r in runner.stats.cells)
        assert runner.stats.peak_rss_kb > 0

    def test_phase_profiles_attached_when_enabled(self):
        runner = Runner(profile_phases=True)
        runner.run_cells(tiny_cells()[:1])
        (record,) = runner.stats.cells
        assert record["phases"]["cell/simulate"]["count"] == 1
        bare = Runner()
        bare.run_cells(tiny_cells()[:1])
        assert "phases" not in bare.stats.cells[0]
