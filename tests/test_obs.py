"""Tests for :mod:`repro.obs`: metrics registry, event tracing, logging,
the ``repro top`` renderer, simulator/service instrumentation and the
observability CLI."""

import asyncio
import io
import json
import logging

import pytest

from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import System
from repro.obs import (
    COHERENCE_TRANSITION,
    DATA_REPL,
    LATENCY_BOUNDS_S,
    NULL_TRACER,
    REUSE_DETECTED,
    TAG_ONLY_ALLOC,
    MetricsRegistry,
    Observability,
    Tracer,
    diff_snapshots,
    format_prometheus,
    log_bounds,
    merge_registry_snapshots,
    validate_chrome_trace,
)
from repro.obs import cli as obs_cli
from repro.obs import logging as obs_logging
from repro.obs.registry import NULL_METRIC
from repro.obs.top import render_dashboard
from repro.service.server import CacheServer
from repro.service.sharding import ShardedStore
from repro.service.client import CacheClient
from repro.workloads.mixes import EXAMPLE_MIX, build_workload


def run(coro):
    """Drive one async test body (no pytest-asyncio in the toolchain)."""
    return asyncio.run(asyncio.wait_for(coro, 60))


# ---------------------------------------------------------------------------
# registry: metric primitives
# ---------------------------------------------------------------------------


class TestLogBounds:
    def test_geometric_span(self):
        bounds = log_bounds(1e-6, 1.0)
        assert bounds[0] == 1e-6
        assert bounds[-1] >= 1.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_default_latency_bounds_cover_16s(self):
        assert LATENCY_BOUNDS_S[0] == 1e-6
        assert LATENCY_BOUNDS_S[-1] >= 16.0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            log_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(1.0, 0.5)
        with pytest.raises(ValueError):
            log_bounds(1e-6, 1.0, growth=1.0)


class TestCounterGauge:
    def test_counter_accumulates_and_rejects_decrease(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", help="h")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_identity_is_name_plus_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", shard=0)
        b = reg.counter("repro_test_total", shard=1)
        again = reg.counter("repro_test_total", shard=0)
        assert a is again and a is not b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_test_total")

    def test_gauge_set_inc_dec_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_test_bytes")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.sample() == {"value": 12}
        cb = reg.gauge_callback("repro_test_conns", lambda: 7)
        assert cb.sample() == {"value": 7}


class TestHistogram:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.bucket_counts == [1, 1, 1, 1]  # last is +Inf overflow

    def test_quantile_interpolates_within_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", bounds=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0
        assert h.quantile(0.0) == pytest.approx(1.0, abs=1.0)

    def test_empty_histogram_quantile_is_zero(self):
        h = MetricsRegistry().histogram("repro_test_seconds")
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_non_increasing_bounds_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("repro_test_seconds", bounds=(1.0, 1.0, 2.0))

    def test_cumulative_export_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", bounds=(1.0, 2.0))
        for v in (0.5, 0.6, 1.5, 9.0):
            h.observe(v)
        sample = h.sample()
        assert sample["buckets"] == [[1.0, 2], [2.0, 3], ["+Inf", 4]]


class TestDisabledRegistry:
    def test_hands_out_shared_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("x") is NULL_METRIC
        assert reg.gauge("x") is NULL_METRIC
        assert reg.histogram("x") is NULL_METRIC
        assert reg.gauge_callback("x", lambda: 1) is NULL_METRIC

    def test_null_metric_absorbs_every_call(self):
        NULL_METRIC.inc()
        NULL_METRIC.dec()
        NULL_METRIC.set(3)
        NULL_METRIC.set_total(9)
        NULL_METRIC.observe(0.1)
        assert NULL_METRIC.quantile(0.5) == 0.0

    def test_snapshot_empty_and_collectors_ignored(self):
        reg = MetricsRegistry(enabled=False)
        calls = []
        reg.register_collector(lambda r: calls.append(1))
        assert reg.snapshot() == {}
        assert reg.to_prometheus() == ""
        assert calls == []

    def test_post_hoc_disable_works(self):
        # the serve CLI builds an enabled bundle then may flip metrics off
        reg = MetricsRegistry()
        reg.enabled = False
        assert reg.counter("x") is NULL_METRIC
        assert reg.snapshot() == {}


class TestCollectors:
    def test_collector_runs_at_snapshot_time(self):
        reg = MetricsRegistry()
        source = {"hits": 0}

        def mirror(r):
            r.counter("repro_test_hits").set_total(source["hits"])

        reg.register_collector(mirror)
        source["hits"] = 42
        snap = reg.snapshot()
        assert snap["repro_test_hits"]["series"][0]["value"] == 42
        source["hits"] = 50
        assert reg.snapshot()["repro_test_hits"]["series"][0]["value"] == 50

    def test_double_registration_is_noop(self):
        reg = MetricsRegistry()
        calls = []

        def collector(r):
            calls.append(1)

        reg.register_collector(collector)
        reg.register_collector(collector)
        reg.collect()
        assert calls == [1]


# ---------------------------------------------------------------------------
# registry: exporters and snapshot algebra
# ---------------------------------------------------------------------------


def _sample_registry():
    reg = MetricsRegistry()
    reg.counter("repro_req_total", help="requests", cmd="GET").inc(10)
    reg.counter("repro_req_total", cmd="SET").inc(4)
    reg.gauge("repro_conns", help="open connections").set(3)
    h = reg.histogram("repro_lat_seconds", bounds=(0.001, 0.01))
    h.observe(0.0005)
    h.observe(0.005)
    return reg


class TestPrometheusExport:
    def test_text_format_shape(self):
        text = _sample_registry().to_prometheus()
        assert "# HELP repro_req_total requests" in text
        assert "# TYPE repro_req_total counter" in text
        assert 'repro_req_total{cmd="GET"} 10' in text
        assert 'repro_req_total{cmd="SET"} 4' in text
        assert "# TYPE repro_conns gauge" in text
        assert "repro_conns 3" in text
        assert 'repro_lat_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_x", path='a"b\\c\nd').inc()
        text = reg.to_prometheus()
        assert r'path="a\"b\\c\nd"' in text

    def test_empty_registry_exports_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_format_prometheus_matches_method(self):
        reg = _sample_registry()
        assert format_prometheus(reg.snapshot()) == reg.to_prometheus()


class TestSnapshotAlgebra:
    def test_to_json_roundtrips(self):
        snap = json.loads(_sample_registry().to_json())
        assert snap["repro_req_total"]["type"] == "counter"
        assert len(snap["repro_req_total"]["series"]) == 2

    def test_diff_counters_and_keep_gauges(self):
        reg = _sample_registry()
        old = reg.snapshot()
        reg.counter("repro_req_total", cmd="GET").inc(5)
        reg.gauge("repro_conns").set(9)
        delta = diff_snapshots(reg.snapshot(), old)
        by_cmd = {
            s["labels"]["cmd"]: s["value"]
            for s in delta["repro_req_total"]["series"]
        }
        assert by_cmd == {"GET": 5, "SET": 0}
        assert delta["repro_conns"]["series"][0]["value"] == 9

    def test_diff_histograms_and_new_series(self):
        reg = _sample_registry()
        old = reg.snapshot()
        reg.histogram("repro_lat_seconds", bounds=(0.001, 0.01)).observe(0.0001)
        reg.counter("repro_req_total", cmd="DEL").inc(2)
        delta = diff_snapshots(reg.snapshot(), old)
        hist = delta["repro_lat_seconds"]["series"][0]
        assert hist["count"] == 1
        assert hist["buckets"][0] == [0.001, 1]
        new_series = [
            s for s in delta["repro_req_total"]["series"]
            if s["labels"]["cmd"] == "DEL"
        ]
        assert new_series[0]["value"] == 2  # diffed against zero

    def test_merge_sums_matching_series(self):
        a = _sample_registry().snapshot()
        b = _sample_registry().snapshot()
        merged = merge_registry_snapshots([a, b])
        by_cmd = {
            s["labels"]["cmd"]: s["value"]
            for s in merged["repro_req_total"]["series"]
        }
        assert by_cmd == {"GET": 20, "SET": 8}
        hist = merged["repro_lat_seconds"]["series"][0]
        assert hist["count"] == 4
        assert hist["buckets"][-1] == ["+Inf", 4]

    def test_merge_does_not_alias_inputs(self):
        a = _sample_registry().snapshot()
        merged = merge_registry_snapshots([a])
        merged["repro_req_total"]["series"][0]["value"] = 999
        assert a["repro_req_total"]["series"][0]["value"] != 999


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_instant_and_span_events(self):
        tr = Tracer(capacity=16, time_unit="s")
        tr.emit(TAG_ONLY_ALLOC, ts=1.0, pid=2, tid=3, args={"addr": 64})
        with tr.span("GET", pid=1, tid=9):
            pass
        instant, span = tr.events()
        assert instant.name == TAG_ONLY_ALLOC and instant.dur is None
        assert span.name == "GET" and span.dur >= 0.0

    def test_ring_wraps_oldest_first(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.emit("e", ts=float(i))
        assert tr.recorded == 10
        assert tr.dropped == 6
        assert [e.ts for e in tr.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_sampling_records_one_in_n(self):
        tr = Tracer(capacity=100, sample_every=4)
        for i in range(20):
            tr.emit("e", ts=float(i))
        assert tr.recorded == 5

    def test_clear_resets_everything(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.emit("e", ts=float(i))
        tr.clear()
        assert tr.events() == [] and tr.recorded == 0 and tr.dropped == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)
        with pytest.raises(ValueError):
            Tracer(time_unit="ns")

    def test_chrome_export_validates_and_scales(self):
        cycles = Tracer(capacity=8, time_unit="cycles")
        cycles.emit("e", ts=100.0)
        seconds = Tracer(capacity=8, time_unit="s")
        seconds.emit("e", ts=0.5, dur=0.25)
        cy_doc, s_doc = cycles.to_chrome(), seconds.to_chrome()
        assert validate_chrome_trace(cy_doc) == []
        assert validate_chrome_trace(s_doc) == []
        assert cy_doc["traceEvents"][0]["ts"] == 100.0  # cycles 1:1 as µs
        assert s_doc["traceEvents"][0]["ts"] == pytest.approx(0.5e6)
        assert s_doc["traceEvents"][0]["dur"] == pytest.approx(0.25e6)
        assert cy_doc["traceEvents"][0]["ph"] == "i"
        assert s_doc["traceEvents"][0]["ph"] == "X"

    def test_jsonl_export(self):
        tr = Tracer(capacity=8)
        tr.emit("a", ts=1.0)
        tr.emit("b", ts=2.0)
        lines = tr.to_jsonl().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
        assert Tracer(capacity=8).to_jsonl() == ""

    def test_write_both_formats(self, tmp_path):
        tr = Tracer(capacity=8)
        tr.emit("e", ts=1.0)
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        tr.write(chrome, fmt="chrome-trace")
        tr.write(jsonl, fmt="jsonl")
        doc = json.loads(chrome.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["recorded"] == 1
        assert json.loads(jsonl.read_text())["name"] == "e"
        with pytest.raises(ValueError):
            tr.write(tmp_path / "t.x", fmt="protobuf")

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("e", ts=1.0)
        with NULL_TRACER.span("GET"):
            pass
        assert NULL_TRACER.events() == []


class TestChromeTraceValidation:
    def test_accepts_object_and_bare_list(self):
        event = {"ph": "i", "ts": 1.0, "pid": 0, "tid": 0, "s": "t"}
        assert validate_chrome_trace({"traceEvents": [event]}) == []
        assert validate_chrome_trace([event]) == []

    def test_rejects_wrong_shapes(self):
        assert validate_chrome_trace("nope")
        assert validate_chrome_trace({"events": []})
        assert validate_chrome_trace([42])

    def test_flags_missing_keys_and_bad_phase(self):
        problems = validate_chrome_trace([{"ph": "?", "ts": "x"}])
        text = "\n".join(problems)
        assert "missing required key 'pid'" in text
        assert "invalid phase" in text
        assert "ts must be numeric" in text

    def test_x_event_needs_dur(self):
        problems = validate_chrome_trace(
            [{"ph": "X", "ts": 1.0, "pid": 0, "tid": 0}]
        )
        assert any("needs a numeric dur" in p for p in problems)


# ---------------------------------------------------------------------------
# the Observability bundle and logging
# ---------------------------------------------------------------------------


class TestObservabilityBundle:
    def test_disabled_bundle_is_inert(self):
        obs = Observability.disabled()
        assert obs.registry.enabled is False
        assert obs.tracer is NULL_TRACER
        assert obs.active is False

    def test_enabled_metrics_only(self):
        obs = Observability.enabled()
        assert obs.registry.enabled and obs.tracer is NULL_TRACER
        assert obs.active

    def test_enabled_with_tracing(self):
        obs = Observability.enabled(
            tracing=True, trace_capacity=32, sample_every=2, time_unit="s"
        )
        assert obs.tracer.capacity == 32
        assert obs.tracer.sample_every == 2
        assert obs.tracer.time_unit == "s"


class TestLogging:
    def test_configure_sets_level_and_is_idempotent(self):
        stream = io.StringIO()
        root = obs_logging.configure(level="INFO", stream=stream, force=True)
        assert root.level == logging.INFO
        again = obs_logging.configure(level="DEBUG")
        assert again is root and root.level == logging.DEBUG
        assert len(root.handlers) == 1

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv(obs_logging.LEVEL_ENV_VAR, "ERROR")
        root = obs_logging.configure(stream=io.StringIO(), force=True)
        assert root.level == logging.ERROR

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_logging.configure(level="LOUD")

    def test_get_logger_prefixes_repro(self):
        assert obs_logging.get_logger("service.server").name == (
            "repro.service.server"
        )
        assert obs_logging.get_logger("repro.cache").name == "repro.cache"

    def test_log_lines_reach_the_stream(self):
        stream = io.StringIO()
        obs_logging.configure(level="INFO", stream=stream, force=True)
        obs_logging.get_logger("test").info("hello %d", 7)
        assert "repro.test: hello 7" in stream.getvalue()
        # restore the default warning level for other tests
        obs_logging.configure(level="WARNING")


# ---------------------------------------------------------------------------
# simulator instrumentation
# ---------------------------------------------------------------------------


def _traced_run(obs, n_refs=2000):
    workload = build_workload(EXAMPLE_MIX, n_refs=n_refs, seed=7, scale=32)
    config = SystemConfig(
        llc=LLCSpec.reuse(8, 1), num_cores=workload.num_cores, scale=32, seed=7
    )
    return System(config, workload, obs=obs).run()


class TestSimulatorInstrumentation:
    def test_reuse_cache_emits_the_paper_events(self):
        obs = Observability.enabled(tracing=True, trace_capacity=1 << 16)
        _traced_run(obs)
        names = {e.name for e in obs.tracer.events()}
        assert TAG_ONLY_ALLOC in names
        assert REUSE_DETECTED in names
        assert DATA_REPL in names
        assert validate_chrome_trace(obs.tracer.to_chrome()) == []

    def test_events_carry_bank_lane_and_cycle_timestamps(self):
        obs = Observability.enabled(tracing=True, trace_capacity=1 << 16)
        _traced_run(obs)
        events = obs.tracer.events()
        assert {e.pid for e in events} <= set(range(4))  # 4 LLC banks
        assert all(e.ts >= 0 for e in events)
        alloc = next(e for e in events if e.name == TAG_ONLY_ALLOC)
        assert "addr" in alloc.args

    def test_registry_collector_publishes_sim_gauges(self):
        obs = Observability.enabled()
        _traced_run(obs)
        snap = obs.registry.snapshot()
        sim_keys = [k for k in snap if k.startswith("repro_sim_llc_")]
        assert sim_keys, f"no simulator gauges in {sorted(snap)}"
        assert any(k.startswith("repro_sim_dram_") for k in snap)

    def test_observability_does_not_change_results(self):
        baseline = _traced_run(None)
        traced = _traced_run(
            Observability.enabled(tracing=True, trace_capacity=1 << 16)
        )
        disabled = _traced_run(Observability.disabled())
        assert traced.performance == baseline.performance
        assert disabled.performance == baseline.performance
        assert traced.llc_mpki == baseline.llc_mpki


class TestCoherenceTracing:
    def test_set_tracer_captures_transitions(self):
        from repro.coherence import protocol
        from repro.coherence.states import Event, State

        tr = Tracer(capacity=16)
        protocol.set_tracer(tr)
        try:
            protocol.apply(State.I, Event.GETS, ts=5.0)
        finally:
            protocol.set_tracer(None)
        (event,) = tr.events()
        assert event.name == COHERENCE_TRANSITION
        assert event.ts == 5.0
        assert event.args == {"from": "I", "event": "GETS", "to": "TO"}
        # detached: further transitions are not recorded
        protocol.apply(State.I, Event.GETS)
        assert tr.recorded == 1


# ---------------------------------------------------------------------------
# the top renderer
# ---------------------------------------------------------------------------


def _stats_snapshot(gets=100, hit_rate=0.5):
    shard = {
        "gets": gets, "hit_rate": hit_rate, "p50_s": 0.001, "p99_s": 0.002,
        "reservoir_occupancy": 10, "tag_only_sets": 3, "data_evictions": 1,
        "tag_evictions": 0, "reuse_admissions": 5,
    }
    return {
        "num_shards": 2,
        "admission": "reuse",
        "stored_entries": 7,
        "data_capacity": 64,
        "shards": [dict(shard), dict(shard)],
        "total": {
            "gets": 2 * gets, "hit_rate": hit_rate, "p50_s": 0.001,
            "p99_s": 0.002, "latency_samples": 20, "tag_only_sets": 6,
            "data_evictions": 2, "tag_evictions": 0, "bytes_stored": 2048,
            "reuse_admissions": 10,
        },
    }


class TestTopRenderer:
    def test_single_frame_lifetime_totals(self):
        frame = render_dashboard(_stats_snapshot())
        assert "repro top" in frame
        assert "shards 2" in frame
        assert "2.0KiB" in frame
        assert "hit rate by shard" in frame
        assert "req/s" in frame  # header column

    def test_rates_from_consecutive_frames(self):
        old = _stats_snapshot(gets=100)
        new = _stats_snapshot(gets=200)
        frame = render_dashboard(new, old, interval=1.0)
        assert "(refresh 1s)" in frame
        # total gets went 200 -> 400 over 1s; admissions were flat
        assert "~200 req/s" in frame

    def test_obs_footer_renders_gauges(self):
        snap = _stats_snapshot()
        snap["obs"] = {
            "repro_service_eventloop_lag_seconds": {
                "type": "gauge", "help": "", "series": [{"labels": {}, "value": 0.004}],
            },
            "repro_service_connections": {
                "type": "gauge", "help": "", "series": [{"labels": {}, "value": 3}],
            },
        }
        frame = render_dashboard(snap)
        assert "connections 3" in frame
        assert "event-loop lag 4.00 ms" in frame

    def test_empty_snapshot_does_not_crash(self):
        assert "repro top" in render_dashboard({})

    def test_empty_obs_block_still_renders_footer(self):
        # regression: a freshly started server sends an obs block with no
        # histogram samples yet; the panel must show zeros, not vanish
        snap = _stats_snapshot()
        snap["obs"] = {}
        frame = render_dashboard(snap)
        assert "connections 0" in frame
        assert "event-loop lag 0.00 ms" in frame
        assert "requests 0" in frame
        assert "~p99 0.000 ms" in frame

    def test_request_latency_summary_from_histogram(self):
        snap = _stats_snapshot()
        snap["obs"] = {
            "repro_service_request_latency_seconds": {
                "type": "histogram", "help": "", "series": [
                    {"labels": {"cmd": "GET"}, "count": 90, "sum": 0.09,
                     "buckets": [[0.001, 90], ["+Inf", 90]]},
                    {"labels": {"cmd": "SET"}, "count": 10, "sum": 0.02,
                     "buckets": [[0.001, 0], [0.004, 10], ["+Inf", 10]]},
                ],
            },
        }
        frame = render_dashboard(snap)
        assert "requests 100" in frame
        # mean = 0.11s / 100 = 1.1 ms; p99 falls in the SET 4ms bucket
        assert "mean 1.100 ms" in frame
        assert "~p99 4.000 ms" in frame

    def test_busy_seconds_column(self):
        snap = _stats_snapshot()
        for i, shard in enumerate(snap["shards"]):
            shard["busy_s"] = 1.5 * (i + 1)
        snap["total"]["busy_s"] = 4.5
        frame = render_dashboard(snap)
        assert "busy s" in frame
        assert "1.50" in frame and "4.50" in frame

    def test_process_block_renders(self):
        snap = _stats_snapshot()
        snap["process"] = {"pid": 4242, "cpu_s": 12.34, "peak_rss_kb": 65536}
        frame = render_dashboard(snap)
        assert "process 4242" in frame
        assert "cpu 12.3s" in frame
        assert "peak rss 64.0MiB" in frame


# ---------------------------------------------------------------------------
# service wiring: STATS obs block, METRICS verb, request spans
# ---------------------------------------------------------------------------


async def _obs_server(**kwargs):
    obs = kwargs.pop("obs")
    store = ShardedStore(
        num_shards=kwargs.pop("num_shards", 2),
        data_capacity=kwargs.pop("data_capacity", 64),
        obs=obs,
    )
    server = CacheServer(store, port=0, obs=obs, **kwargs)
    await server.start()
    return server


class TestServiceObservability:
    def test_stats_carries_registry_snapshot(self):
        async def body():
            obs = Observability.enabled()
            server = await _obs_server(obs=obs)
            client = CacheClient(port=server.port)
            try:
                await client.set("k", b"v")
                await client.get("k")
                stats = await client.stats()
                assert "obs" in stats
                assert "repro_service_requests_total" in stats["obs"]
                assert "repro_service_connections" in stats["obs"]
            finally:
                await client.close()
                await server.stop()

        run(body())

    def test_metrics_verb_serves_prometheus_text(self):
        async def body():
            obs = Observability.enabled()
            server = await _obs_server(obs=obs)
            client = CacheClient(port=server.port)
            try:
                await client.set("k", b"v")
                await client.get("k")
                text = await client.metrics()
                assert "# TYPE repro_service_requests_total counter" in text
                assert 'cmd="GET"' in text
                assert "repro_service_shard_hits" in text
                assert "repro_service_request_latency_seconds_bucket" in text
            finally:
                await client.close()
                await server.stop()

        run(body())

    def test_disabled_obs_keeps_protocol_lean(self):
        async def body():
            server = await _obs_server(obs=None)
            client = CacheClient(port=server.port)
            try:
                stats = await client.stats()
                assert "obs" not in stats
                assert await client.metrics() == ""
            finally:
                await client.close()
                await server.stop()

        run(body())

    def test_request_spans_use_shard_and_connection_lanes(self):
        async def body():
            obs = Observability.enabled(
                tracing=True, trace_capacity=256, time_unit="s"
            )
            server = await _obs_server(obs=obs)
            client = CacheClient(port=server.port)
            try:
                await client.set("alpha", b"v")
                await client.get("alpha")
                await client.get("missing")
            finally:
                await client.close()
                await server.stop()
            spans = [e for e in obs.tracer.events() if e.cat == "request"]
            assert {s.name for s in spans} >= {"GET", "SET"}
            assert all(s.dur is not None and s.dur >= 0 for s in spans)
            assert validate_chrome_trace(obs.tracer.to_chrome()) == []

        run(body())


# ---------------------------------------------------------------------------
# the obs CLI
# ---------------------------------------------------------------------------


class TestObsCli:
    def test_export_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        rc = obs_cli.main([
            "obs", "export", "--out", str(out), "--refs", "800",
            "--metrics-out", str(metrics),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"], "export recorded no events"
        assert "repro_sim_llc_" in metrics.read_text()
        assert "event(s) recorded" in capsys.readouterr().out

    def test_export_jsonl_format(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        rc = obs_cli.main([
            "obs", "export", "--format", "jsonl", "--out", str(out),
            "--refs", "800",
        ])
        assert rc == 0
        first = json.loads(out.read_text().splitlines()[0])
        assert {"name", "ph", "ts", "pid"} <= set(first)

    def test_validate_accepts_good_and_rejects_bad(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(
            {"traceEvents": [
                {"ph": "i", "ts": 1.0, "pid": 0, "tid": 0, "s": "t"}
            ]}
        ))
        assert obs_cli.main(["obs", "validate", str(good)]) == 0
        assert "OK (1 event(s))" in capsys.readouterr().out

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "?"}]}))
        assert obs_cli.main(["obs", "validate", str(bad)]) == 1

        assert obs_cli.main(["obs", "validate", str(tmp_path / "nope.json")]) == 1

    def test_top_refuses_unreachable_server(self, capsys):
        rc = obs_cli.main([
            "top", "--port", "1", "--iterations", "1", "--interval", "0.01",
        ])
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_top_renders_frames_against_live_server(self, capsys):
        async def body():
            server = await _obs_server(obs=Observability.enabled())
            client = CacheClient(port=server.port)
            try:
                await client.set("k", b"v")
                await client.get("k")
            finally:
                await client.close()
            try:
                args = obs_cli.build_obs_parser().parse_args([
                    "top", "--port", str(server.port),
                    "--interval", "0.01", "--iterations", "2", "--no-clear",
                ])
                rc = await obs_cli._top_loop(args)
            finally:
                await server.stop()
            return rc

        assert run(body()) == 0
        out = capsys.readouterr().out
        assert out.count("repro top") == 2
        assert "req/s" in out
