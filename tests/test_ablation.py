"""Tests for the ablation experiment drivers and custom policy plumbing."""

import pytest

from repro.experiments import ExperimentParams
from repro.experiments.ablation import (
    DATA_POLICIES,
    TAG_POLICIES,
    format_ablation,
    run_allocation_ablation,
    run_data_policy_ablation,
    run_tag_policy_ablation,
)
from repro.hierarchy.config import LLCSpec
from repro.hierarchy.system import build_llc_banks
from repro.hierarchy.config import SystemConfig

TINY = ExperimentParams(n_workloads=1, n_refs=1500)


class TestPolicyPlumbing:
    def test_spec_tag_policy_reaches_banks(self):
        cfg = SystemConfig(llc=LLCSpec.reuse(4, 1, tag_policy="srrip"))
        banks = build_llc_banks(cfg)
        assert all(b.tag_policy_name == "srrip" for b in banks)

    def test_spec_data_policy_reaches_banks(self):
        cfg = SystemConfig(llc=LLCSpec.reuse(4, 1, data_policy="lru"))
        banks = build_llc_banks(cfg)
        assert all(b.data_policy_name == "lru" for b in banks)

    def test_default_policies_are_papers(self):
        cfg = SystemConfig(llc=LLCSpec.reuse(4, 1))
        banks = build_llc_banks(cfg)
        assert all(b.tag_policy_name == "nrr" for b in banks)
        assert all(b.data_policy_name == "clock" for b in banks)

    def test_unknown_policy_rejected(self):
        cfg = SystemConfig(llc=LLCSpec.reuse(4, 1, tag_policy="belady"))
        with pytest.raises(ValueError):
            build_llc_banks(cfg)


class TestAblations:
    def test_tag_policy_ablation(self):
        r = run_tag_policy_ablation(TINY)
        assert set(r) == set(TAG_POLICIES)
        assert all(v > 0 for v in r.values())

    def test_data_policy_ablation(self):
        r = run_data_policy_ablation(TINY)
        assert set(r) == set(DATA_POLICIES)

    def test_allocation_ablation_contains_comparators(self):
        r = run_allocation_ablation(TINY)
        assert "RC-4/1 (selective)" in r and "conv-1MB-lru" in r

    def test_format(self):
        text = format_ablation({"a": 1.0}, "Title")
        assert "Title" in text and "1.000" in text
