"""Tests for the 'overlap' core model and the MLP sensitivity study."""

import pytest

from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import run_workload
from repro.workloads import Trace, Workload


def stream_workload(n=600, gap=2):
    traces = []
    for c in range(8):
        base = (c + 1) << 30
        traces.append(Trace(f"s{c}", [gap] * n, [base + i for i in range(n)],
                            [0] * n))
    return Workload("stream", traces)


def hot_workload(n=600):
    traces = []
    for c in range(8):
        base = (c + 1) << 30
        traces.append(Trace(f"h{c}", [2] * n, [base + i % 4 for i in range(n)],
                            [0] * n))
    return Workload("hot", traces)


class TestOverlapCoreModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(core_model="ooo").validate()

    def test_overlap_speeds_up_miss_bound_streams(self):
        wl = stream_workload()
        inorder = run_workload(SystemConfig(), wl, warmup_frac=0.0)
        ov = run_workload(
            SystemConfig(core_model="overlap", mlp_window=32), wl, warmup_frac=0.0
        )
        assert ov.performance > 1.5 * inorder.performance

    def test_overlap_does_not_change_l1_resident_cpi(self):
        wl = hot_workload()
        inorder = run_workload(SystemConfig(), wl, warmup_frac=0.0)
        ov = run_workload(
            SystemConfig(core_model="overlap", mlp_window=32), wl, warmup_frac=0.0
        )
        assert ov.performance == pytest.approx(inorder.performance, rel=0.05)

    def test_bigger_window_never_slower(self):
        wl = stream_workload()
        small = run_workload(
            SystemConfig(core_model="overlap", mlp_window=8), wl, warmup_frac=0.0
        )
        big = run_workload(
            SystemConfig(core_model="overlap", mlp_window=64), wl, warmup_frac=0.0
        )
        assert big.performance >= small.performance * 0.999

    def test_cache_contents_identical_across_core_models(self):
        """The core model changes timing, not which lines live where."""
        wl = stream_workload(n=300)
        a = run_workload(SystemConfig(llc=LLCSpec.reuse(4, 1)), wl,
                         warmup_frac=0.0)
        b = run_workload(
            SystemConfig(llc=LLCSpec.reuse(4, 1), core_model="overlap"),
            wl, warmup_frac=0.0,
        )
        for key in ("tag_fills", "data_fills", "to_hits"):
            assert a.llc_stats[key] == b.llc_stats[key]


class TestMLPStudy:
    def test_structure(self):
        from repro.experiments import ExperimentParams
        from repro.experiments.mlp import format_mlp, run_mlp

        r = run_mlp(ExperimentParams(n_workloads=1, n_refs=1500))
        assert set(r) == {"inorder", "overlap-16", "overlap-64"}
        for per_spec in r.values():
            assert "RC-4/1" in per_spec
        assert "Core-model sensitivity" in format_mlp(r)
