"""Tests for the TO-MSI protocol table and the full-map directory."""

import pytest

from repro.coherence import (
    Directory,
    Event,
    ProtocolError,
    State,
    apply,
    legal_events,
)


class TestStates:
    def test_data_grouping(self):
        assert State.S.has_data and State.M.has_data
        assert not State.TO.has_data and not State.I.has_data

    def test_tag_residency(self):
        assert State.TO.tag_resident
        assert not State.I.tag_resident


class TestProtocolTable:
    """The transitions of paper Fig. 3."""

    def test_first_access_allocates_tag_only(self):
        for event in (Event.GETS, Event.GETX):
            t = apply(State.I, event)
            assert t.next_state is State.TO
            assert not t.allocates_data

    def test_reuse_enters_data_array(self):
        t = apply(State.TO, Event.GETS)
        assert t.next_state is State.S and t.allocates_data
        t = apply(State.TO, Event.GETX)
        assert t.next_state is State.M and t.allocates_data

    def test_data_repl_demotes_to_tag_only(self):
        for state in (State.S, State.M):
            t = apply(state, Event.DATA_REPL)
            assert t.next_state is State.TO
            assert t.deallocates_data

    def test_dirty_data_repl_writes_back(self):
        assert apply(State.M, Event.DATA_REPL).writeback_to_memory
        assert not apply(State.S, Event.DATA_REPL).writeback_to_memory

    def test_putx_routing(self):
        # tag-only: the writeback is forwarded to memory
        assert apply(State.TO, Event.PUTX).writeback_to_memory
        # tag+data: absorbed by the data array
        t = apply(State.S, Event.PUTX)
        assert t.next_state is State.M and t.writeback_to_data_array
        assert not t.writeback_to_memory

    def test_tag_repl_always_ends_invalid(self):
        for state in (State.TO, State.S, State.M):
            assert apply(state, Event.TAG_REPL).next_state is State.I

    def test_upgrade_keeps_tag_only(self):
        t = apply(State.TO, Event.UPG)
        assert t.next_state is State.TO and not t.allocates_data

    def test_upgrade_promotes_shared(self):
        assert apply(State.S, Event.UPG).next_state is State.M

    def test_illegal_events_raise(self):
        with pytest.raises(ProtocolError):
            apply(State.I, Event.PUTS)
        with pytest.raises(ProtocolError):
            apply(State.TO, Event.DATA_REPL)

    def test_legal_events_cover_demands(self):
        for state in (State.TO, State.S, State.M):
            events = legal_events(state)
            assert Event.GETS in events and Event.GETX in events

    def test_no_transition_both_allocates_and_deallocates(self):
        for state in State:
            for event in Event:
                try:
                    t = apply(state, event)
                except ProtocolError:
                    continue
                assert not (t.allocates_data and t.deallocates_data)

    def test_data_states_closed_under_demands(self):
        """tag+data states only leave the data group via DataRepl/TagRepl."""
        for state in (State.S, State.M):
            for event in (Event.GETS, Event.GETX, Event.UPG, Event.PUTS, Event.PUTX):
                assert apply(state, event).next_state.has_data


class TestDirectory:
    def test_add_remove(self):
        d = Directory(2, 2, 4)
        d.add(0, 0, 2)
        assert d.is_present(0, 0, 2)
        assert d.sharers(0, 0) == [2]
        d.remove(0, 0, 2)
        assert not d.in_private_caches(0, 0)

    def test_set_only(self):
        d = Directory(1, 1, 8)
        for c in range(4):
            d.add(0, 0, c)
        d.set_only(0, 0, 5)
        assert d.sharers(0, 0) == [5]

    def test_others_excludes_requester(self):
        d = Directory(1, 1, 8)
        d.add(0, 0, 1)
        d.add(0, 0, 3)
        assert d.others(0, 0, 1) == [3]
        assert d.others(0, 0, 0) == [1, 3]

    def test_clear(self):
        d = Directory(1, 2, 8)
        d.add(0, 1, 7)
        d.clear(0, 1)
        assert d.vector(0, 1) == 0

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            Directory(1, 1, 0)
