"""Tests for repro.perf: suites, baseline record/compare and the CLI.

The load-bearing pin is the compare exit code: 0 against an identical
recording, 1 when a cell is artificially slowed past the noise thresholds
— that is the contract the CI perf-smoke job gates on.  Recording tests
use the ``micro`` suite (one experiment, seconds of compute) so the suite
stays cheap.
"""

import copy
import json

import pytest

from repro.perf import (
    PERF_SCHEMA,
    PerfSuite,
    compare_baselines,
    format_comparison,
    get_suite,
    load_baseline,
    machine_fingerprint,
    record_suite,
    suite_names,
    write_baseline,
)
from repro.perf import cli as perf_cli


@pytest.fixture(scope="module")
def micro_baseline():
    """One real recording of the micro suite, shared across tests."""
    return record_suite(get_suite("micro"))


def _slowed(baseline, factor=10.0):
    doc = copy.deepcopy(baseline)
    for exp in doc["experiments"].values():
        exp["compute_s"] *= factor
        for cell in exp["cells"]:
            if "wall_s" in cell:
                cell["wall_s"] *= factor
    return doc


# -- suites -------------------------------------------------------------------


class TestSuites:
    def test_registered_suites(self):
        assert {"smoke", "sweep", "micro"} <= set(suite_names())

    def test_specs_resolve_against_registry(self):
        for name in suite_names():
            suite = get_suite(name)
            specs = suite.specs()
            assert [s.name for s in specs] == list(suite.experiments)

    def test_unknown_suite_lists_valid_names(self):
        with pytest.raises(KeyError, match="smoke"):
            get_suite("nope")

    def test_suite_is_frozen(self):
        suite = get_suite("smoke")
        with pytest.raises(AttributeError):
            suite.name = "other"
        assert isinstance(suite, PerfSuite)


# -- recording ----------------------------------------------------------------


class TestRecord:
    def test_document_shape(self, micro_baseline):
        doc = micro_baseline
        assert doc["schema"] == PERF_SCHEMA
        assert doc["suite"] == "micro"
        assert doc["machine"] == machine_fingerprint()
        assert len(doc["code_fingerprint"]) == 64
        assert set(doc["params"]) == {
            "n_workloads", "n_refs", "scale", "seed", "warmup_frac",
        }
        assert doc["totals"]["wall_s"] > 0
        assert doc["totals"]["refs"] > 0

    def test_per_cell_resources_recorded(self, micro_baseline):
        (exp,) = micro_baseline["experiments"].values()
        assert exp["cells"]
        for cell in exp["cells"]:
            assert cell["status"] == "run"
            assert cell["wall_s"] > 0
            assert cell["cpu_s"] > 0
            assert cell["peak_rss_kb"] > 0
            assert cell["refs"] > 0
            # phases live in the merged per-experiment table, not per cell
            assert "phases" not in cell
        assert exp["phases"]["cell/simulate"]["count"] == len(exp["cells"])

    def test_roundtrip_through_disk(self, micro_baseline, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        write_baseline(path, micro_baseline)
        assert load_baseline(path) == json.loads(
            json.dumps(micro_baseline)
        )

    def test_load_rejects_wrong_schema(self, micro_baseline, tmp_path):
        bad = dict(micro_baseline, schema=PERF_SCHEMA + 1)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_load_rejects_missing_keys(self, micro_baseline, tmp_path):
        bad = {k: v for k, v in micro_baseline.items() if k != "totals"}
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="totals"):
            load_baseline(path)


# -- comparison ---------------------------------------------------------------


class TestCompare:
    def test_identical_documents_pass(self, micro_baseline):
        report = compare_baselines(micro_baseline, micro_baseline)
        assert report["ok"]
        assert report["regressions"] == []
        assert report["checked"] > 0
        assert report["same_machine"] and report["same_code"]

    def test_slowed_cells_regress(self, micro_baseline):
        report = compare_baselines(micro_baseline, _slowed(micro_baseline))
        assert not report["ok"]
        cells = {r["cell"] for r in report["regressions"]}
        assert "(total compute)" in cells
        assert len(cells) > 1  # the individual cells tripped too

    def test_speedup_reported_not_failed(self, micro_baseline):
        report = compare_baselines(_slowed(micro_baseline), micro_baseline)
        assert report["ok"]
        assert report["improvements"]

    def test_within_threshold_noise_tolerated(self, micro_baseline):
        noisy = _slowed(micro_baseline, factor=1.2)  # +20% < +50% default
        assert compare_baselines(micro_baseline, noisy)["ok"]

    def test_abs_floor_guards_microsecond_cells(self, micro_baseline):
        # a 10x blowup that stays under the absolute floor is noise
        report = compare_baselines(
            micro_baseline, _slowed(micro_baseline),
            abs_floor_s=1e9,
        )
        assert report["ok"]

    def test_suite_mismatch_is_an_error(self, micro_baseline):
        other = dict(micro_baseline, suite="smoke")
        report = compare_baselines(micro_baseline, other)
        assert not report["ok"]
        assert any("suite mismatch" in e for e in report["errors"])

    def test_params_mismatch_is_an_error(self, micro_baseline):
        other = copy.deepcopy(micro_baseline)
        other["params"]["n_refs"] += 1
        assert not compare_baselines(micro_baseline, other)["ok"]

    def test_added_and_removed_cells_reported(self, micro_baseline):
        current = copy.deepcopy(micro_baseline)
        (exp,) = current["experiments"].values()
        removed_label = exp["cells"][0]["label"]
        exp["cells"][0] = dict(exp["cells"][0], label="brand-new-cell")
        report = compare_baselines(micro_baseline, current)
        (name,) = micro_baseline["experiments"]
        assert f"{name}:brand-new-cell" in report["added"]
        assert f"{name}:{removed_label}" in report["removed"]

    def test_format_mentions_regressions(self, micro_baseline):
        text = format_comparison(
            compare_baselines(micro_baseline, _slowed(micro_baseline))
        )
        assert "REGRESSION" in text and text.strip().endswith(")")
        ok_text = format_comparison(
            compare_baselines(micro_baseline, micro_baseline)
        )
        assert "OK" in ok_text and "0 regression(s)" in ok_text


# -- CLI ----------------------------------------------------------------------


class TestPerfCli:
    def test_record_writes_baseline_and_flame(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        flame = tmp_path / "flame.txt"
        history = tmp_path / "history"
        rc = perf_cli.main([
            "perf", "record", "--suite", "micro", "--out", str(out),
            "--flame", str(flame), "--history-dir", str(history),
        ])
        assert rc == 0
        doc = load_baseline(out)
        assert doc["suite"] == "micro"
        # the collapsed-stack output is non-empty and well-formed
        stacks = flame.read_text()
        assert stacks.strip()
        assert all(
            line.rsplit(" ", 1)[1].isdigit()
            for line in stacks.strip().split("\n")
        )
        assert (history / "perf-0000.json").exists()

    def test_compare_exit_codes_pin_the_ci_contract(self, micro_baseline,
                                                    tmp_path, capsys):
        base = tmp_path / "base.json"
        write_baseline(base, micro_baseline)

        same = tmp_path / "same.json"
        write_baseline(same, micro_baseline)
        assert perf_cli.main([
            "perf", "compare", "--baseline", str(base),
            "--current", str(same),
        ]) == 0

        slow = tmp_path / "slow.json"
        write_baseline(slow, _slowed(micro_baseline))
        assert perf_cli.main([
            "perf", "compare", "--baseline", str(base),
            "--current", str(slow),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_missing_baseline_exits_2(self, tmp_path, capsys):
        assert perf_cli.main([
            "perf", "compare", "--baseline", str(tmp_path / "none.json"),
        ]) == 2

    def test_trend_tabulates_history(self, micro_baseline, tmp_path, capsys):
        history = tmp_path / "h"
        history.mkdir()
        write_baseline(history / "perf-0000.json", micro_baseline)
        write_baseline(history / "perf-0001.json", _slowed(micro_baseline))
        assert perf_cli.main([
            "perf", "trend", "--history-dir", str(history),
        ]) == 0
        out = capsys.readouterr().out
        assert "perf-0000.json" in out and "perf-0001.json" in out

    def test_trend_empty_history_exits_2(self, tmp_path):
        assert perf_cli.main([
            "perf", "trend", "--history-dir", str(tmp_path),
        ]) == 2

    def test_main_dispatches_perf(self, micro_baseline, tmp_path):
        from repro.__main__ import main

        base = tmp_path / "b.json"
        write_baseline(base, micro_baseline)
        assert main(["perf", "compare", "--baseline", str(base),
                     "--current", str(base)]) == 0
