"""Tests for the continuous-telemetry stack: time-series retention
(:mod:`repro.obs.timeseries`), the alert engine (:mod:`repro.obs.alerts`),
the observability HTTP endpoint (:mod:`repro.obs.http`), the flight
recorder (:mod:`repro.obs.flight`), the :class:`ServiceTelemetry`
composition, and the telemetry additions to ``repro top`` rendering and
the server (uptime, per-framing connection counts)."""

import asyncio
import json
import os

import pytest

from repro.obs import Observability
from repro.obs.alerts import AlertEngine, AlertRule, builtin_rules
from repro.obs.flight import (
    FLIGHT_FORMAT,
    FlightRecorder,
    load_flight,
    render_flight,
)
from repro.obs.http import ObsHTTPServer
from repro.obs.registry import MetricsRegistry, SLOTracker
from repro.obs.timeseries import (
    DEFAULT_TIERS,
    TelemetrySampler,
    Tier,
    TimeSeriesStore,
)
from repro.obs.top import render_cluster_dashboard, render_dashboard
from repro.obs.tracing import Tracer
from repro.service import CacheClient, CacheServer, ShardedStore
from repro.service.telemetry import ServiceTelemetry


def run(coro):
    """Drive one async test body (no pytest-asyncio in the toolchain)."""
    return asyncio.run(asyncio.wait_for(coro, 60))


def make_store(tiers=((1.0, 5), (10.0, 6))):
    """A store on a logical clock starting at 0 (advance via now=)."""
    return TimeSeriesStore(tiers=tiers, clock=lambda: 0.0)


# ---------------------------------------------------------------------------
# time-series store: delta encoding, retention, tiers
# ---------------------------------------------------------------------------


class TestTimeSeriesStore:
    def test_roundtrip_points(self):
        ts = make_store()
        for t, v in [(0.0, 10), (1.0, 12), (2.0, 11)]:
            ts.record("m", {}, v, now=t)
        assert ts.query("m", {}) == [[0.0, 10], [1.0, 12], [2.0, 11]]

    def test_retention_is_a_hard_cap(self):
        ts = make_store(tiers=((1.0, 300), (10.0, 360)))
        for t in range(400):
            ts.record("m", {}, t * 2, now=float(t))
        pts = ts.query("m", {})
        assert len(pts) == 300
        # trimming folded the dropped deltas into the base point, so the
        # oldest retained point is exact, not drifted
        assert pts[0] == [100.0, 200]
        assert pts[-1] == [399.0, 798]

    def test_coarse_tier_keeps_last_per_bucket(self):
        ts = make_store(tiers=((1.0, 300), (10.0, 360)))
        for t in range(25):
            ts.record("m", {}, t, now=float(t))
        coarse = ts.query("m", {}, tier=1)
        # one point per 10s bucket, each the freshest value the bucket saw
        assert [v for _, v in coarse] == [9, 19, 24]

    def test_since_filters_old_points(self):
        ts = make_store()
        for t in range(5):
            ts.record("m", {}, t, now=float(t))
        assert ts.query("m", {}, since=3.0) == [[3.0, 3], [4.0, 4]]

    def test_query_without_labels_sums_series(self):
        ts = make_store()
        ts.record("hits", {"shard": "0"}, 3, now=1.0)
        ts.record("hits", {"shard": "1"}, 4, now=1.0)
        assert ts.query("hits") == [[1.0, 7]]
        assert ts.query("hits", {"shard": "1"}) == [[1.0, 4]]
        assert ts.latest("hits") == 7

    def test_series_listing_handles_shared_names(self):
        # regression: sorted() over (name, labels-dict) pairs raised
        # TypeError when two series shared a metric name
        ts = make_store()
        ts.record("hits", {"shard": "1"}, 1, now=0.0)
        ts.record("hits", {"shard": "0"}, 1, now=0.0)
        assert ts.series() == [
            ("hits", {"shard": "0"}),
            ("hits", {"shard": "1"}),
        ]

    def test_window_picks_finest_covering_tier(self):
        ts = make_store(tiers=((1.0, 5), (10.0, 360)))
        for t in range(40):
            ts.record("m", {}, t, now=float(t))
        # 4s window fits the 5-point fine tier; 60s needs the coarse one
        fine = ts.window("m", {}, duration=4.0, now=39.0)
        assert [t for t, _ in fine] == [35.0, 36.0, 37.0, 38.0, 39.0]
        coarse = ts.window("m", {}, duration=60.0, now=39.0)
        assert all(t >= 39.0 - 60.0 for t, _ in coarse)
        assert coarse[-1] == [39.0, 39]

    def test_sample_reads_registry_histograms_as_count_and_sum(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c", help="x").inc(5)
        registry.gauge("g", help="x").set(2.5)
        hist = registry.histogram("h", help="x", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        ts = TimeSeriesStore(registry=registry, clock=lambda: 0.0)
        ts.sample(now=1.0)
        assert ts.query("c") == [[1.0, 5]]
        assert ts.query("g") == [[1.0, 2.5]]
        assert ts.query("h_count") == [[1.0, 2]]
        assert ts.query("h_sum") == [[1.0, pytest.approx(0.55)]]

    def test_disabled_registry_still_counts_samples(self):
        ts = TimeSeriesStore(registry=None, clock=lambda: 0.0)
        ts.sample(now=1.0)
        ts.sample(now=2.0)
        assert ts.samples_taken == 2
        assert ts.series() == []

    def test_to_dict_bounds_to_window(self):
        ts = make_store()
        for t in range(5):
            ts.record("m", {"s": "0"}, t, now=float(t))
        dump = ts.to_dict(window_s=2.0, now=4.0)
        assert dump == {"m": [{"labels": {"s": "0"},
                               "points": [[2.0, 2], [3.0, 3], [4.0, 4]]}]}

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(tiers=())
        with pytest.raises(ValueError):
            TelemetrySampler(make_store(), interval=0)

    def test_default_tiers_cover_five_minutes_and_an_hour(self):
        assert DEFAULT_TIERS[0] == Tier(1.0, 300)
        spans = [t.resolution_s * t.length for t in DEFAULT_TIERS]
        assert spans[0] == 300.0 and spans[1] == 3600.0


class TestTelemetrySampler:
    def test_tick_samples_and_runs_hooks(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c", help="x").inc()
        ts = TimeSeriesStore(registry=registry, clock=lambda: 0.0)
        sampler = TelemetrySampler(ts, interval=0.5)
        seen = []
        sampler.on_sample(seen.append)
        sampler.tick(now=7.0)
        assert seen == [7.0]
        assert ts.query("c") == [[7.0, 1]]


# ---------------------------------------------------------------------------
# alert rules and engine lifecycle
# ---------------------------------------------------------------------------


class TestAlertRule:
    def test_kinds(self):
        ts = make_store(tiers=((1.0, 60),))
        for t in range(4):
            ts.record("m", {}, 10 * t, now=float(t))
        threshold = AlertRule("a", "m", kind="threshold", op=">", threshold=5)
        delta = AlertRule("b", "m", kind="delta", op=">", threshold=5,
                          window_s=10)
        rate = AlertRule("c", "m", kind="rate", op=">", threshold=5,
                         window_s=10)
        assert threshold.value(ts, 3.0) == 30
        assert delta.value(ts, 3.0) == 30
        assert rate.value(ts, 3.0) == pytest.approx(10.0)

    def test_ratio_subtracts_metric_from_its_own_divisors(self):
        ts = make_store(tiers=((1.0, 60),))
        ts.record("hits", {}, 0, now=0.0)
        ts.record("misses", {}, 0, now=0.0)
        ts.record("hits", {}, 30, now=5.0)
        ts.record("misses", {}, 10, now=5.0)
        rule = AlertRule("hr", "hits", kind="ratio",
                         divisors=("hits", "misses"), op="<", threshold=0.2,
                         window_s=10)
        assert rule.value(ts, 5.0) == pytest.approx(30 / 40)

    def test_ratio_zero_traffic_window_is_healthy(self):
        ts = make_store(tiers=((1.0, 60),))
        ts.record("hits", {}, 5, now=0.0)
        ts.record("misses", {}, 5, now=0.0)
        ts.record("hits", {}, 5, now=5.0)
        ts.record("misses", {}, 5, now=5.0)
        rule = AlertRule("hr", "hits", kind="ratio",
                         divisors=("hits", "misses"), op="<", threshold=0.2,
                         window_s=10)
        assert rule.value(ts, 5.0) is None
        assert not rule.breaches(None)
        assert rule.recovered(None)

    def test_validation(self):
        with pytest.raises(ValueError):
            AlertRule("x", "m", kind="bogus")
        with pytest.raises(ValueError):
            AlertRule("x", "m", op="==")
        with pytest.raises(ValueError):
            AlertRule("x", "m", kind="ratio")  # no divisors
        with pytest.raises(ValueError):
            # hysteresis on the wrong side of the firing bound
            AlertRule("x", "m", op="<", threshold=0.2, resolve_threshold=0.1)
        with pytest.raises(ValueError):
            AlertRule("x", "m", op=">", threshold=1.0, resolve_threshold=2.0)


class TestAlertEngine:
    def _flood_engine(self):
        """hits flat, misses climbing: windowed hit rate collapses."""
        ts = make_store(tiers=((1.0, 120),))
        rule = AlertRule("hit_rate_drop", "hits", kind="ratio",
                         divisors=("hits", "misses"), op="<", threshold=0.2,
                         resolve_threshold=0.4, window_s=10, for_s=3)
        return ts, AlertEngine(ts, [rule])

    def test_lifecycle_pending_firing_resolved(self):
        ts, engine = self._flood_engine()
        hits, misses = 0, 0
        for t in range(30):
            if t < 10 or t >= 20:
                hits += 9
                misses += 1
            else:
                misses += 10  # scan flood: everything misses
            ts.record("hits", {}, hits, now=float(t))
            ts.record("misses", {}, misses, now=float(t))
            engine.evaluate(now=float(t))
        moves = [(e["t"], e["from"], e["to"]) for e in engine.timeline]
        assert [m[1:] for m in moves] == [
            ("ok", "pending"), ("pending", "firing"), ("firing", "resolved"),
        ]
        pending_t, firing_t, resolved_t = (m[0] for m in moves)
        assert firing_t - pending_t >= 3  # for_s held before firing
        assert resolved_t > firing_t

    def test_pending_recovers_to_ok_before_for_s(self):
        ts = make_store(tiers=((1.0, 60),))
        rule = AlertRule("lag", "m", op=">", threshold=1.0, for_s=5,
                         window_s=10)
        engine = AlertEngine(ts, [rule])
        ts.record("m", {}, 2.0, now=0.0)
        engine.evaluate(now=0.0)
        ts.record("m", {}, 0.5, now=2.0)  # blip ended before for_s
        engine.evaluate(now=2.0)
        assert [(e["from"], e["to"]) for e in engine.timeline] == [
            ("ok", "pending"), ("pending", "ok"),
        ]

    def test_for_s_zero_fires_immediately(self):
        ts = make_store(tiers=((1.0, 60),))
        engine = AlertEngine(
            ts, [AlertRule("now", "m", op=">", threshold=1.0, for_s=0)]
        )
        ts.record("m", {}, 5.0, now=1.0)
        transitions = engine.evaluate(now=1.0)
        assert [t["to"] for t in transitions] == ["firing"]
        assert engine.firing()[0]["alert"] == "now"

    def test_hysteresis_holds_between_bounds(self):
        ts = make_store(tiers=((1.0, 60),))
        rule = AlertRule("lag", "m", op=">", threshold=1.0,
                         resolve_threshold=0.5, for_s=0, window_s=10)
        engine = AlertEngine(ts, [rule])
        ts.record("m", {}, 2.0, now=0.0)
        engine.evaluate(now=0.0)
        ts.record("m", {}, 0.8, now=1.0)  # below firing, above resolve
        engine.evaluate(now=1.0)
        assert engine.states()[0]["state"] == "firing"
        ts.record("m", {}, 0.3, now=2.0)
        engine.evaluate(now=2.0)
        assert engine.states()[0]["state"] == "resolved"

    def test_timelines_are_byte_identical_across_runs(self):
        dumps = []
        for _ in range(2):
            ts, engine = self._flood_engine()
            hits, misses = 0, 0
            for t in range(30):
                flood = 10 <= t < 20
                hits += 0 if flood else 9
                misses += 10 if flood else 1
                ts.record("hits", {}, hits, now=float(t))
                ts.record("misses", {}, misses, now=float(t))
                engine.evaluate(now=float(t))
            dumps.append(json.dumps(engine.timeline, sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_duplicate_rule_name_rejected(self):
        engine = AlertEngine(make_store(), [AlertRule("a", "m")])
        with pytest.raises(ValueError):
            engine.add_rule(AlertRule("a", "m"))

    def test_transition_hooks_see_events(self):
        ts = make_store(tiers=((1.0, 60),))
        engine = AlertEngine(
            ts, [AlertRule("now", "m", op=">", threshold=1.0, for_s=0)]
        )
        seen = []
        engine.on_transition(seen.append)
        ts.record("m", {}, 5.0, now=1.0)
        engine.evaluate(now=1.0)
        assert seen[0]["alert"] == "now" and seen[0]["to"] == "firing"

    def test_builtin_rules_cover_the_repo_degradations(self):
        names = {r.name for r in builtin_rules()}
        assert names == {"hit_rate_drop", "pending_inval_debt",
                         "eventloop_lag", "slo_burn"}


# ---------------------------------------------------------------------------
# SLO burn gauge: zero-request windows (regression)
# ---------------------------------------------------------------------------


class TestSLOWindowedGauge:
    def test_zero_request_window_publishes_zero(self):
        registry = MetricsRegistry(enabled=True)
        slo = SLOTracker("availability", 0.99, registry=registry)
        slo.observe(90, 100)  # 10% errors vs 1% budget: 10x burn
        assert slo.window_burn == pytest.approx(10.0)
        # identical totals again: the window saw no traffic, the gauge
        # must report healthy instead of carrying the stale ratio forward
        lifetime = slo.observe(90, 100)
        assert slo.window_burn == 0.0
        series = registry.snapshot()["repro_slo_burn_rate"]["series"]
        assert series[0]["value"] == 0.0
        # the return value is still the lifetime burn (end-of-run summary)
        assert lifetime == pytest.approx(10.0)

    def test_windowed_burn_tracks_the_delta_not_the_lifetime(self):
        slo = SLOTracker("availability", 0.99)
        slo.observe(100, 100)
        slo.observe(190, 200)  # this window: 10 bad / 100 → 10x burn
        assert slo.window_burn == pytest.approx(10.0)
        slo.observe(290, 300)  # this window: clean
        assert slo.window_burn == 0.0
        assert slo.burn_rate > 0.0  # lifetime remembers the bad window


# ---------------------------------------------------------------------------
# HTTP endpoint (pure routing + one live socket test)
# ---------------------------------------------------------------------------


class TestObsHTTPRouting:
    def _stack(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_service_shard_hits", help="x", shard="0").inc(4)
        ts = TimeSeriesStore(registry=registry, clock=lambda: 10.0)
        ts.sample(now=10.0)
        engine = AlertEngine(ts, builtin_rules())
        health = {"healthy": True, "ready": True}
        http = ObsHTTPServer(registry=registry, timeseries=ts, alerts=engine,
                             health=lambda: health, varz=lambda: {"up": 1})
        return registry, ts, engine, health, http

    def test_metrics_is_byte_identical_to_the_exporter(self):
        registry, _, _, _, http = self._stack()
        status, ctype, body = http.handle_path("/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert body == registry.to_prometheus().encode("utf-8")

    def test_healthz_flips_with_drain_and_back(self):
        _, _, _, health, http = self._stack()
        assert http.handle_path("/healthz")[0] == 200
        health["healthy"] = False
        health["ready"] = False
        status, _, body = http.handle_path("/healthz")
        assert status == 503
        assert json.loads(body)["healthy"] is False
        assert http.handle_path("/readyz")[0] == 503
        health["healthy"] = health["ready"] = True
        assert http.handle_path("/healthz")[0] == 200
        assert http.handle_path("/readyz")[0] == 200

    def test_varz_payload_shape(self):
        _, _, _, _, http = self._stack()
        status, _, body = http.handle_path("/varz")
        payload = json.loads(body)
        assert status == 200
        assert payload["server"] == {"up": 1}
        assert payload["timeseries"]["samples_taken"] == 1
        assert payload["timeseries"]["series"] == 1
        assert "repro_service_shard_hits" in payload["metrics"]
        assert len(payload["alerts"]) == 4

    def test_history_query_with_labels_and_window(self):
        _, ts, _, _, http = self._stack()
        status, _, body = http.handle_path(
            "/history?metric=repro_service_shard_hits&label.shard=0&window=30"
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["labels"] == {"shard": "0"}
        assert payload["points"] == [[10.0, 4]]

    def test_history_errors(self):
        _, _, _, _, http = self._stack()
        status, _, body = http.handle_path("/history")
        assert status == 400
        assert "series" in json.loads(body)  # discoverable: lists names
        assert http.handle_path("/history?metric=m&window=x")[0] == 400

    def test_alertz_and_root_and_404(self):
        _, _, _, _, http = self._stack()
        status, _, body = http.handle_path("/alertz")
        assert status == 200
        assert len(json.loads(body)["rules"]) == 4
        assert "/alertz" in json.loads(http.handle_path("/")[2])["routes"]
        assert http.handle_path("/nope")[0] == 404

    def test_missing_collaborators_404_not_crash(self):
        http = ObsHTTPServer()
        assert http.handle_path("/metrics")[0] == 404
        assert http.handle_path("/history?metric=m")[0] == 404
        assert http.handle_path("/alertz")[0] == 404
        assert http.handle_path("/healthz")[0] == 200  # default healthy

    def test_respond_framing(self):
        _, _, _, _, http = self._stack()
        response = http.respond("GET /healthz HTTP/1.1")
        head, _, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: close" in head
        assert http.respond("HEAD /healthz HTTP/1.1").endswith(b"\r\n\r\n")
        assert http.respond("POST /healthz HTTP/1.1").startswith(
            b"HTTP/1.1 405")
        assert http.requests_served["/healthz"] == 2  # POST not counted


class TestObsHTTPLive:
    def test_serves_over_a_real_socket(self):
        async def body():
            registry = MetricsRegistry(enabled=True)
            registry.counter("c_total", help="x").inc(3)
            http = ObsHTTPServer(registry=registry, port=0)
            await http.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", http.port)
                writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                head, _, payload = raw.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200")
                assert payload == registry.to_prometheus().encode("utf-8")
            finally:
                await http.stop()
        run(body())


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


def _recorder(tmp_path):
    ts = TimeSeriesStore(tiers=((1.0, 60),), clock=lambda: 30.0)
    for t in range(10):
        ts.record("repro_service_shard_hits", {"shard": "0"}, t * 5,
                  now=float(t))
    engine = AlertEngine(ts, [AlertRule("now", "repro_service_shard_hits",
                                        op=">", threshold=1.0, for_s=0)])
    engine.evaluate(now=9.0)
    tracer = Tracer(capacity=8, time_unit="s")
    for i in range(3):
        tracer.emit(f"e{i}", cat="request", ts=float(i))
    return FlightRecorder(
        out_dir=str(tmp_path), timeseries=ts, tracer=tracer, alerts=engine,
        stats_fn=lambda: {"total": {"gets": 12}}, window_s=60.0,
        clock=lambda: 30.0,
    )


class TestFlightRecorder:
    def test_bundle_collects_every_plane(self, tmp_path):
        bundle = _recorder(tmp_path).bundle(reason="test")
        assert bundle["format"] == FLIGHT_FORMAT
        assert bundle["t"] == 30.0
        assert bundle["reason"] == "test"
        hits = bundle["timeseries"]["repro_service_shard_hits"]
        assert hits[0]["labels"] == {"shard": "0"}
        assert len(hits[0]["points"]) == 10
        assert len(bundle["trace"]["events"]) == 3
        assert bundle["alerts"]["states"][0]["state"] == "firing"
        assert bundle["stats"] == {"total": {"gets": 12}}

    def test_bundle_reads_trace_nondestructively(self, tmp_path):
        recorder = _recorder(tmp_path)
        recorder.bundle()
        assert len(recorder.tracer.events()) == 3  # ring not drained

    def test_dump_load_render_roundtrip(self, tmp_path):
        recorder = _recorder(tmp_path)
        path = recorder.dump(reason="unit test!")
        assert os.path.basename(path).startswith("flight-")
        assert "unit-test-" in path  # reason sanitized into the filename
        assert recorder.dumped == [path]
        loaded = load_flight(path)
        assert loaded == recorder.bundle(reason="unit test!")
        text = render_flight(loaded)
        assert "reason=unit test!" in text
        assert "!! now" in text  # firing alert flagged
        assert "repro_service_shard_hits" in text
        assert "trace ring: 3 events" in text
        assert '"gets": 12' in text

    def test_same_second_dumps_do_not_clobber(self, tmp_path):
        recorder = _recorder(tmp_path)
        first = recorder.dump(reason="r")
        second = recorder.dump(reason="r")
        assert first != second and os.path.exists(first)
        assert os.path.exists(second)

    def test_dump_is_atomic_no_tmp_left_behind(self, tmp_path):
        recorder = _recorder(tmp_path)
        recorder.dump(reason="r")
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]

    def test_stats_fn_failure_is_captured_not_fatal(self, tmp_path):
        def boom():
            raise RuntimeError("server mid-crash")
        recorder = FlightRecorder(out_dir=str(tmp_path), stats_fn=boom)
        bundle = recorder.bundle(reason="fatal")
        assert "RuntimeError" in bundle["stats"]["error"]

    def test_load_rejects_non_bundles(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "other/9"}')
        with pytest.raises(ValueError):
            load_flight(str(path))


# ---------------------------------------------------------------------------
# ServiceTelemetry against a live server
# ---------------------------------------------------------------------------


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, payload


async def _telemetry_server(tmp_path, **kwargs):
    obs = Observability.enabled(time_unit="s")
    store = ShardedStore(num_shards=2, data_capacity=64, obs=obs)
    server = CacheServer(store, port=0, obs=obs)
    await server.start()
    telemetry = ServiceTelemetry(server, port=0, interval=0.1,
                                 flight_dir=str(tmp_path), **kwargs)
    await telemetry.start()
    return server, telemetry


class TestServiceTelemetry:
    def test_endpoints_track_live_server_state(self, tmp_path):
        async def body():
            server, telemetry = await _telemetry_server(tmp_path)
            try:
                status, payload = await _http_get(telemetry.http.port,
                                                  "/healthz")
                assert status == 200
                health = json.loads(payload)
                assert health["healthy"] and not health["draining"]
                assert health["uptime_s"] > 0

                client = CacheClient("127.0.0.1", server.port)
                await client.set("k", b"v")   # declined: tagged only
                await client.get("k")         # miss, but marks tag reuse
                await client.set("k", b"v")   # reuse observed: admitted
                assert await client.get("k") == b"v"
                await client.close()

                await asyncio.sleep(0.3)  # a few sampler ticks
                status, payload = await _http_get(
                    telemetry.http.port,
                    "/history?metric=repro_service_shard_hits&window=60",
                )
                assert status == 200
                points = json.loads(payload)["points"]
                assert points and points[-1][1] == 1

                status, payload = await _http_get(telemetry.http.port,
                                                  "/varz")
                varz = json.loads(payload)
                assert varz["server"]["uptime_s"] > 0
                assert varz["timeseries"]["samples_taken"] >= 2
            finally:
                await telemetry.stop()
                await server.stop()
        run(body())

    def test_healthz_flips_during_drain(self, tmp_path):
        async def body():
            server, telemetry = await _telemetry_server(tmp_path)
            try:
                assert (await _http_get(telemetry.http.port,
                                        "/healthz"))[0] == 200
                server._stopping = True  # what DRAIN sets
                status, payload = await _http_get(telemetry.http.port,
                                                  "/healthz")
                assert status == 503
                assert json.loads(payload)["draining"] is True
                server._stopping = False
                assert (await _http_get(telemetry.http.port,
                                        "/readyz"))[0] == 200
            finally:
                await telemetry.stop()
                await server.stop()
        run(body())

    def test_dump_flight_writes_a_renderable_bundle(self, tmp_path):
        async def body():
            server, telemetry = await _telemetry_server(tmp_path)
            try:
                telemetry.sampler.tick()
                path = telemetry.dump_flight("unit")
                bundle = load_flight(path)
                assert bundle["reason"] == "unit"
                assert render_flight(bundle).startswith("flight bundle")
                assert bundle["stats"]["num_shards"] == 2
            finally:
                await telemetry.stop()
                await server.stop()
        run(body())


# ---------------------------------------------------------------------------
# server additions: uptime and per-framing connection counters
# ---------------------------------------------------------------------------


class TestServerWireAccounting:
    def test_uptime_and_framing_counts(self):
        async def body():
            obs = Observability.enabled(time_unit="s")
            store = ShardedStore(num_shards=2, data_capacity=64, obs=obs)
            server = CacheServer(store, port=0, obs=obs)
            assert server.uptime_s == 0.0  # not started yet
            await server.start()
            try:
                v1 = CacheClient("127.0.0.1", server.port, protocol="v1",
                                 pool_size=1)
                await v1.set("a", b"1")
                await v1.close()
                v2 = CacheClient("127.0.0.1", server.port, protocol="v2",
                                 pool_size=1)
                await v2.set("b", b"2")
                await v2.close()
                assert server.connections_v1 == 1
                assert server.connections_v2 == 1
                assert server.uptime_s > 0
                info = server.server_info()
                assert info["connections_v1"] == 1
                assert info["connections_v2"] == 1
                assert not info["draining"]
                snap = obs.registry.snapshot()
                series = snap["repro_service_connections_framing_total"][
                    "series"]
                by_label = {s["labels"]["framing"]: s["value"]
                            for s in series}
                assert by_label == {"v1": 1, "v2": 1}
                payload = json.loads(server._stats_payload().decode())
                assert payload["server"]["connections_v1"] == 1
            finally:
                await server.stop()
        run(body())


# ---------------------------------------------------------------------------
# dashboard rendering additions (pure)
# ---------------------------------------------------------------------------


class TestDashboardTelemetry:
    def _snapshot(self):
        return {
            "num_shards": 1, "admission": "reuse", "stored_entries": 1,
            "data_capacity": 64,
            "shards": [{"gets": 10, "hit_rate": 0.5}],
            "total": {"gets": 10, "hit_rate": 0.5},
            "server": {"uptime_s": 3725.0, "connections_v1": 2,
                       "connections_v2": 3, "connections_open": 1,
                       "draining": False},
        }

    def test_server_block_renders_uptime_and_wire_split(self):
        frame = render_dashboard(self._snapshot())
        assert "uptime 1:02:05" in frame
        assert "conns 5 (v1 2 / v2 3, open 1)" in frame
        assert "DRAINING" not in frame

    def test_draining_flag_is_visible(self):
        snapshot = self._snapshot()
        snapshot["server"]["draining"] = True
        assert "DRAINING" in render_dashboard(snapshot)

    def test_sparkline_rows_render_history(self):
        frame = render_dashboard(
            self._snapshot(),
            spark={"hit_rate": [0.1, 0.5, 0.9], "ops_per_s": [5.0, 10.0]},
        )
        lines = [l for l in frame.splitlines()
                 if l.strip().startswith(("hit_rate", "ops_per_s"))]
        assert len(lines) == 2
        assert lines[0].rstrip().endswith("0.9")  # newest value shown
        assert lines[1].rstrip().endswith("10")

    def test_cluster_table_has_wire_and_uptime_columns(self):
        summary = {
            "nodes": {
                "node0": {"name": "node0", "stored": 10, "data_capacity": 128,
                          "replicas_held": 3, "pending_invals": 1,
                          "stale_rejects": 2, "protocol_races": 0,
                          "eventloop_lag_s": 0.0012, "draining": False,
                          "connections_v1": 4, "connections_v2": 7,
                          "uptime_s": 61.0},
                "node1": {"name": "node1", "unreachable": True},
            },
            "totals": {"stored": 10, "data_capacity": 256},
            "unreachable": ["node1"], "draining": [],
        }
        frame = render_cluster_dashboard(summary)
        header = next(l for l in frame.splitlines() if "wire v1/v2" in l)
        assert "up" in header
        row = next(l for l in frame.splitlines() if l.strip().
                   startswith("node0"))
        assert "4/7" in row and "0:01:01" in row
        down = next(l for l in frame.splitlines() if "DOWN" in l)
        assert down.rstrip().endswith("-")  # placeholders, not zeros
