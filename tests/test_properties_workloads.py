"""Property-based tests for workload generation and plotting helpers."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.textplot import bar_chart, line_plot, sparkline
from repro.workloads.profiles import SPEC_APPS, SPEC_PROFILES
from repro.workloads.synthetic import generate_trace
from repro.workloads.analysis import stack_distances


@settings(max_examples=25, deadline=None)
@given(
    app=st.sampled_from(SPEC_APPS),
    n_refs=st.integers(10, 2000),
    seed=st.integers(0, 2**31),
    scale=st.sampled_from([16, 32, 64]),
)
def test_trace_generation_total(app, n_refs, seed, scale):
    """Every generated trace is well-formed for any (app, seed, scale)."""
    trace = generate_trace(SPEC_PROFILES[app], n_refs, seed=seed, scale=scale)
    assert trace.n_refs == n_refs
    assert all(g >= 0 for g in trace.gaps)
    assert all(w in (0, 1) for w in trace.writes)
    assert all(a >= 0 for a in trace.addrs)
    # determinism
    again = generate_trace(SPEC_PROFILES[app], n_refs, seed=seed, scale=scale)
    assert again.addrs == trace.addrs


@settings(max_examples=25, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 40), min_size=1, max_size=300),
)
def test_stack_distances_bounds(addrs):
    """Distances are -1 or in [0, footprint), and hit counts at infinite
    capacity equal accesses minus distinct lines."""
    d = stack_distances(addrs)
    footprint = len(set(addrs))
    for x in d:
        assert x == -1 or 0 <= x < footprint
    assert (d >= 0).sum() == len(addrs) - footprint


@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(
        st.tuples(st.text(min_size=1, max_size=8),
                  st.floats(-10, 10, allow_nan=False)),
        max_size=12,
    ),
    baseline=st.one_of(st.none(), st.floats(-10, 10, allow_nan=False)),
)
def test_bar_chart_never_crashes(items, baseline):
    out = bar_chart(items, baseline=baseline)
    assert isinstance(out, str)


@settings(max_examples=30, deadline=None)
@given(
    points=st.lists(
        st.tuples(st.floats(-100, 100, allow_nan=False),
                  st.floats(-100, 100, allow_nan=False)),
        max_size=40,
    )
)
def test_line_plot_never_crashes(points):
    assert isinstance(line_plot({"s": points}), str)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 1, allow_nan=False), max_size=500))
def test_sparkline_never_crashes(values):
    assert isinstance(sparkline(values), str)
