"""Tests for generation recording, liveness, hit distributions and perf math."""

import pytest

from repro.metrics import (
    GenerationRecorder,
    aggregate_ipc,
    geomean,
    mpki,
    quartiles,
    speedup,
)


def build_log(events, end=1000, activate_at=0):
    """events: list of (kind, addr, time)."""
    rec = GenerationRecorder()
    rec.activate(activate_at)
    for kind, addr, t in events:
        getattr(rec, f"on_{kind}")(addr, t)
    return rec.finalize(end)


class TestRecorder:
    def test_generation_lifecycle(self):
        log = build_log([
            ("fill", 1, 10), ("hit", 1, 20), ("hit", 1, 30), ("evict", 1, 50),
        ])
        assert log.n_generations == 1
        assert log.hits[0] == 2
        assert log.fills[0] == 10 and log.evicts[0] == 50
        assert log.last_hits[0] == 30

    def test_multiple_generations_same_line(self):
        log = build_log([
            ("fill", 1, 0), ("evict", 1, 10),
            ("fill", 1, 20), ("hit", 1, 25), ("evict", 1, 30),
        ])
        assert log.n_generations == 2
        assert sorted(log.hits.tolist()) == [0, 1]

    def test_open_generations_closed_at_end(self):
        log = build_log([("fill", 7, 100), ("hit", 7, 200)], end=500)
        assert log.n_generations == 1
        assert log.evicts[0] == 500

    def test_inactive_recorder_ignores_events(self):
        rec = GenerationRecorder()
        rec.on_fill(1, 0)
        rec.on_hit(1, 1)
        rec.on_evict(1, 2)
        assert rec.finalize(10).n_generations == 0

    def test_events_for_pre_activation_lines_ignored(self):
        rec = GenerationRecorder()
        rec.on_fill(1, 0)  # before activation: untracked
        rec.activate(5)
        rec.on_hit(1, 6)  # line 1 unknown: ignored
        rec.on_evict(1, 7)
        assert rec.finalize(10).n_generations == 0

    def test_double_finalize_rejected(self):
        rec = GenerationRecorder()
        rec.finalize(1)
        with pytest.raises(RuntimeError):
            rec.finalize(2)


class TestLiveness:
    """A line is live while it will still receive hits (paper Fig. 1a)."""

    def test_live_until_last_hit(self):
        log = build_log([
            ("fill", 1, 0), ("hit", 1, 50), ("evict", 1, 100),
        ])
        assert log.live_fraction_at(25) == 1.0   # hit still coming
        assert log.live_fraction_at(75) == 0.0   # dead: no more hits

    def test_zero_hit_lines_always_dead(self):
        log = build_log([("fill", 1, 0), ("evict", 1, 100)])
        assert log.live_fraction_at(50) == 0.0

    def test_mixed_population(self):
        log = build_log([
            ("fill", 1, 0), ("hit", 1, 90), ("evict", 1, 100),
            ("fill", 2, 0), ("evict", 2, 100),
        ])
        assert log.live_fraction_at(50) == 0.5

    def test_non_resident_not_counted(self):
        log = build_log([
            ("fill", 1, 0), ("evict", 1, 10),
            ("fill", 2, 20), ("hit", 2, 40), ("evict", 2, 50),
        ])
        assert log.live_fraction_at(30) == 1.0  # only line 2 resident

    def test_series_and_mean(self):
        log = build_log([
            ("fill", 1, 0), ("hit", 1, 500), ("evict", 1, 1000),
        ], end=1000)
        times, fracs = log.live_fraction_series(100)
        assert len(times) == len(fracs)
        assert 0 < log.mean_live_fraction(100) <= 1

    def test_bad_interval_rejected(self):
        log = build_log([("fill", 1, 0)])
        with pytest.raises(ValueError):
            log.live_fraction_series(0)


class TestHitDistribution:
    """Paper Fig. 1b: sorted groups of equal population."""

    def test_concentration(self):
        events = [("fill", 0, 0)]
        events = []
        # one hot line with 90 hits, nine dead lines
        events.append(("fill", 0, 0))
        for i in range(90):
            events.append(("hit", 0, i + 1))
        events.append(("evict", 0, 200))
        for a in range(1, 10):
            events.append(("fill", a, 0))
            events.append(("evict", a, 200))
        log = build_log(events)
        share, avg = log.hit_distribution(n_groups=10)
        assert share[0] == pytest.approx(1.0)  # top 10% got all hits
        assert avg[0] == pytest.approx(90)
        assert share[1:].sum() == 0
        assert log.useful_fraction() == pytest.approx(0.1)

    def test_groups_partition_all_generations(self):
        events = []
        for a in range(25):
            events.append(("fill", a, 0))
            for h in range(a):
                events.append(("hit", a, h + 1))
            events.append(("evict", a, 100))
        log = build_log(events)
        share, _ = log.hit_distribution(n_groups=5)
        assert share.sum() == pytest.approx(1.0)

    def test_empty_log(self):
        log = build_log([])
        share, avg = log.hit_distribution(10)
        assert share.sum() == 0 and avg.sum() == 0
        assert log.useful_fraction() == 0.0


class TestPerfMath:
    def test_aggregate_ipc(self):
        assert aggregate_ipc([100, 200], [100, 100]) == pytest.approx(3.0)

    def test_aggregate_ipc_length_check(self):
        with pytest.raises(ValueError):
            aggregate_ipc([1], [1, 2])

    def test_speedup(self):
        assert speedup(1.2, 1.0) == pytest.approx(1.2)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_mpki(self):
        assert mpki(50, 10_000) == pytest.approx(5.0)
        assert mpki(50, 0) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_quartiles(self):
        q = quartiles([1, 2, 3, 4, 5])
        assert q == (1, 2, 3, 4, 5)
        with pytest.raises(ValueError):
            quartiles([])

    def test_quartiles_interpolation(self):
        _, q1, med, q3, _ = quartiles([0, 10])
        assert (q1, med, q3) == (2.5, 5.0, 7.5)
