"""Tests for :mod:`repro.cluster`: the distributed TO-MSI protocol table,
the owner-side replica directory, the versioned replica store, and the
multi-node cluster (routing, invalidation, join/leave, consistency
storms)."""

import asyncio

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterError,
    InvalidationError,
    LocalCluster,
    ReplicaStore,
    run_storm,
)
from repro.cluster.consistency import decode_counter, encode_value
from repro.coherence.distributed import (
    DistProtocolError,
    ReplicaDirectory,
    apply_distributed,
    legal_events,
)
from repro.coherence.states import Event, State
from repro.service.client import CacheClient, ServerError


def run(coro):
    """Drive one async test body (no pytest-asyncio in the toolchain)."""
    return asyncio.run(asyncio.wait_for(coro, 60))


# ---------------------------------------------------------------------------
# the distributed transition table
# ---------------------------------------------------------------------------


class TestDistributedTable:
    def test_admission_walk(self):
        # the paper's selective-allocation walk, one level up: track on
        # first touch, store on the write that proves reuse
        t = apply_distributed(State.I, Event.GETS)
        assert t.next_state is State.TO and not t.allocates_data
        t = apply_distributed(State.TO, Event.GETX)
        assert t.next_state is State.M and t.allocates_data

    def test_only_sharer_exits_invalidate(self):
        for (state, event) in (
            (State.S, Event.GETX),
            (State.S, Event.UPG),
            (State.S, Event.DATA_REPL),
            (State.S, Event.TAG_REPL),
        ):
            assert apply_distributed(state, event).invalidates_replicas
        assert not apply_distributed(State.S, Event.GETS).invalidates_replicas
        assert not apply_distributed(State.S, Event.PUTS).invalidates_replicas
        assert not apply_distributed(State.M, Event.TAG_REPL).invalidates_replicas

    def test_putx_is_illegal_everywhere(self):
        for state in State:
            with pytest.raises(DistProtocolError):
                apply_distributed(state, Event.PUTX)

    def test_no_writeback_obligations(self):
        # look-aside cache: the client owns durability
        for state in State:
            for event in legal_events(state):
                t = apply_distributed(state, event)
                assert not t.writeback_to_memory
                assert not t.writeback_to_data_array

    def test_legal_events_sorted_and_complete(self):
        assert legal_events(State.I) == [Event.GETS, Event.GETX]
        assert Event.PUTX not in legal_events(State.S)


# ---------------------------------------------------------------------------
# the owner's replica directory
# ---------------------------------------------------------------------------


class TestReplicaDirectory:
    def test_admit_lands_in_modified(self):
        d = ReplicaDirectory()
        assert d.note_admit("k") == ()
        assert d.state_of("k") is State.M
        assert d.holders_of("k") == ()

    def test_replicate_opens_sharing(self):
        d = ReplicaDirectory()
        d.note_admit("k")
        d.note_replicate("k", "peer1")
        d.note_replicate("k", "peer2")
        assert d.state_of("k") is State.S
        assert d.holders_of("k") == ("peer1", "peer2")
        assert d.tracked_holders == 2

    def test_update_returns_holders_and_clears_them(self):
        d = ReplicaDirectory()
        d.note_admit("k")
        d.note_replicate("k", "peer1")
        holders = d.note_update("k")
        assert holders == ("peer1",)
        assert d.state_of("k") is State.M
        assert d.holders_of("k") == ()

    def test_update_from_a_holder_is_an_upgrade(self):
        d = ReplicaDirectory()
        d.note_admit("k")
        d.note_replicate("k", "peer1")
        assert d.note_update("k", writer="peer1") == ("peer1",)
        assert d.state_of("k") is State.M

    def test_update_on_untracked_key_is_an_admission(self):
        d = ReplicaDirectory()
        assert d.note_update("fresh") == ()
        assert d.state_of("fresh") is State.M

    def test_replica_evicted_narrows_the_holder_set(self):
        d = ReplicaDirectory()
        d.note_admit("k")
        d.note_replicate("k", "peer1")
        d.note_replicate("k", "peer2")
        d.note_replica_evicted("k", "peer1")
        assert d.holders_of("k") == ("peer2",)
        assert d.state_of("k") is State.S
        assert d.races == 0

    def test_stray_puts_counts_as_race_not_error(self):
        d = ReplicaDirectory()
        d.note_admit("k")
        d.note_replica_evicted("k", "ghost")
        assert d.races == 1
        assert d.state_of("k") is State.M  # entry untouched

    def test_data_eviction_demotes_and_invalidates(self):
        d = ReplicaDirectory()
        d.note_admit("k")
        d.note_replicate("k", "peer1")
        assert d.note_data_evicted("k") == ("peer1",)
        # TO carries no information: the entry is pruned back to I
        assert d.state_of("k") is State.I
        assert len(d) == 0

    def test_dropped_clears_everything(self):
        d = ReplicaDirectory()
        d.note_admit("k")
        d.note_replicate("k", "peer1")
        assert d.note_dropped("k") == ("peer1",)
        assert d.state_of("k") is State.I
        assert d.note_dropped("k") == ()  # idempotent on untracked keys

    def test_only_stable_sharer_states_persist(self):
        d = ReplicaDirectory()
        d.note_admit("a")
        d.note_admit("b")
        d.note_replicate("a", "p")
        assert len(d) == 2
        d.note_dropped("a")
        d.note_data_evicted("b")
        assert len(d) == 0 and d.tracked_holders == 0


# ---------------------------------------------------------------------------
# the peer's versioned replica store
# ---------------------------------------------------------------------------


class TestReplicaStore:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplicaStore(0)

    def test_put_get_roundtrip(self):
        rs = ReplicaStore(4)
        accepted, evicted = rs.put("k", 1, b"v1", "owner")
        assert accepted and evicted == []
        assert rs.get("k") == b"v1" and len(rs) == 1

    def test_floor_rejects_strictly_older_pushes(self):
        rs = ReplicaStore(4)
        rs.invalidate("k", 5)
        assert rs.put("k", 4, b"old", "o") == (False, [])
        accepted, _ = rs.put("k", 5, b"current", "o")
        assert accepted  # the version the INVAL protected may replicate
        assert rs.get("k") == b"current"

    def test_retried_push_is_idempotent(self):
        rs = ReplicaStore(4)
        rs.put("k", 3, b"v", "o")
        accepted, _ = rs.put("k", 3, b"v", "o")
        assert accepted  # a retry after a lost response is not stale
        assert rs.put("k", 2, b"older", "o") == (False, [])

    def test_invalidate_drops_strictly_older_only(self):
        rs = ReplicaStore(4)
        rs.put("k", 7, b"v7", "o")
        assert rs.invalidate("k", 7) is False  # equal version survives
        assert rs.get("k") == b"v7"
        assert rs.invalidate("k", 8) is True
        assert rs.get("k") is None

    def test_fifo_eviction_reports_displaced_owners(self):
        rs = ReplicaStore(2)
        rs.put("a", 1, b"x", "owner-a")
        rs.put("b", 1, b"x", "owner-b")
        _, evicted = rs.put("c", 1, b"x", "owner-c")
        assert evicted == [("a", "owner-a")]
        assert rs.get("a") is None and rs.get("c") == b"x"

    def test_refresh_moves_key_to_the_back_of_the_fifo(self):
        rs = ReplicaStore(2)
        rs.put("a", 1, b"x", "oa")
        rs.put("b", 1, b"x", "ob")
        rs.put("a", 2, b"y", "oa")  # refreshed: now newest
        _, evicted = rs.put("c", 1, b"x", "oc")
        assert evicted == [("b", "ob")]

    def test_voluntary_evict_returns_owner(self):
        rs = ReplicaStore(2)
        rs.put("a", 1, b"x", "owner-a")
        assert rs.evict("a") == "owner-a"
        assert rs.evict("a") is None


# ---------------------------------------------------------------------------
# storm value helpers
# ---------------------------------------------------------------------------


class TestStormValues:
    def test_roundtrip(self):
        assert decode_counter("k", encode_value("k", 42)) == 42

    def test_foreign_value_is_loud(self):
        with pytest.raises(ValueError):
            decode_counter("k", encode_value("other", 1))


# ---------------------------------------------------------------------------
# the cluster end to end (real asyncio TCP on loopback)
# ---------------------------------------------------------------------------


class TestClusterBasics:
    def test_client_needs_nodes(self):
        with pytest.raises(ClusterError):
            ClusterClient({})

    def test_set_get_delete_route_by_ring(self):
        async def body():
            async with LocalCluster(3, admission="always",
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                assert await client.set("k1", b"v1")
                assert await client.get("k1") == b"v1"
                assert await client.get("absent") is None
                assert await client.delete("k1")
                assert await client.get("k1") is None
                # the value lived only on the ring owner
                owner = cluster.ring.owner("k1")
                for name, node in cluster.nodes.items():
                    assert node.store.contains("k1") is False
                assert owner in cluster.nodes

        run(body())

    def test_values_land_on_their_owner_only(self):
        async def body():
            async with LocalCluster(3, admission="always",
                                    data_capacity_per_node=256) as cluster:
                client = cluster.client()
                keys = [f"place:{i}" for i in range(60)]
                for key in keys:
                    await client.set(key, key.encode())
                for key in keys:
                    owner = cluster.ring.owner(key)
                    for name, node in cluster.nodes.items():
                        assert node.store.contains(key) == (name == owner)

        run(body())

    def test_reuse_admission_applies_per_owner(self):
        async def body():
            async with LocalCluster(2, admission="reuse",
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                # pure SET traffic is tagged, never stored — the paper's
                # selective allocation, enforced at the owning node
                assert await client.set("cold", b"v") is False
                assert await client.get("cold") is None
                # a second GET miss proves reuse; the next SET stores
                assert await client.get("cold") is None
                assert await client.set("cold", b"v") is True
                assert await client.get("cold") == b"v"

        run(body())

    def test_cluster_stats_aggregate(self):
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                await client.set("k", b"v")
                await client.get("k")
                await client.get("nope")
                stats = await client.stats()
                assert stats["total"]["hits"] == 1
                assert stats["total"]["misses"] == 1
                assert stats["total"]["stored_entries"] == 1
                assert len(stats["nodes"]) == 2

        run(body())

    def test_status_reports_every_node(self):
        async def body():
            async with LocalCluster(3, admission="always") as cluster:
                client = cluster.client()
                status = await client.status()
                assert sorted(status) == sorted(cluster.nodes)
                for name, block in status.items():
                    assert block["name"] == name
                    assert block["draining"] is False
                    assert block["replication_factor"] == cluster.replicas
                health = await client.health()
                assert all(v["up"] for v in health.values())

        run(body())


class TestReplication:
    def test_write_replicates_to_ring_successor(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                await client.set("rk", b"v1")
                owner_name, holder_name = cluster.ring.preference("rk", 2)
                owner = cluster.nodes[owner_name]
                holder = cluster.nodes[holder_name]
                assert holder.replica_store.get("rk") == b"v1"
                assert owner.directory.holders_of("rk") == (holder_name,)

        run(body())

    def test_overwrite_invalidates_before_ack(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                await client.set("rk", b"v1")
                _, holder_name = cluster.ring.preference("rk", 2)
                holder = cluster.nodes[holder_name]
                await client.set("rk", b"v2")
                # the ack implies no v1 replica survives anywhere; the
                # holder has either the re-pushed v2 or nothing
                assert holder.replica_store.get("rk") in (b"v2", None)
                await client.delete("rk")
                assert holder.replica_store.get("rk") is None

        run(body())

    def test_replica_read_path_serves_current_value(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client(read_replicas=True)
                await client.set("rk", b"v1")
                # spread reads rotate over owner and replica; every read
                # must see the acked value (replica misses fall back)
                for _ in range(8):
                    assert await client.get("rk") == b"v1"

        run(body())

    def test_stale_push_is_rejected_by_version_floor(self):
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=64) as cluster:
                names = sorted(cluster.nodes)
                a, b = cluster.nodes[names[0]], cluster.nodes[names[1]]
                # b saw INVAL at version 3: a push of version 2 is stale
                b.replica_store.invalidate("k", 3)
                assert await b.handle_repl("k", 2, b"old") is False
                assert await b.handle_repl("k", 3, b"new") is True
                assert b.handle_rget("k") == b"new"
                assert a is not b

        run(body())


class TestMembership:
    def test_join_moves_a_bounded_fraction_and_loses_nothing(self):
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=256) as cluster:
                client = cluster.client()
                keys = [f"mig:{i}" for i in range(100)]
                for key in keys:
                    await client.set(key, key.encode())
                report = await cluster.add_node()
                assert report["examined"] == 100
                assert report["moved_fraction"] <= 1 / 3 + 0.15
                for key in keys:
                    assert await client.get(key) == key.encode()

        run(body())

    def test_leave_migrates_every_key_to_survivors(self):
        async def body():
            async with LocalCluster(3, admission="always",
                                    data_capacity_per_node=256) as cluster:
                client = cluster.client()
                keys = [f"mig:{i}" for i in range(100)]
                for key in keys:
                    await client.set(key, key.encode())
                victim = sorted(cluster.nodes)[0]
                await cluster.remove_node(victim)
                assert victim not in cluster.nodes
                for key in keys:
                    assert await client.get(key) == key.encode()

        run(body())

    def test_cannot_remove_last_node(self):
        async def body():
            async with LocalCluster(1, admission="always") as cluster:
                name = next(iter(cluster.nodes))
                with pytest.raises(ValueError):
                    await cluster.remove_node(name)

        run(body())

    def test_peer_drain_verb_stops_the_target(self):
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=64) as cluster:
                a, b = sorted(cluster.nodes.values(), key=lambda n: n.name)
                assert await a._peers[b.name].drain() is True
                assert b.draining is True

        run(body())

    def test_membership_changes_are_serialized(self):
        # a join and a leave launched together must not interleave their
        # ring edits and migrations (the membership lock)
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=256) as cluster:
                client = cluster.client()
                keys = [f"ser:{i}" for i in range(50)]
                for key in keys:
                    await client.set(key, key.encode())
                victim = sorted(cluster.nodes)[0]
                join, leave = await asyncio.gather(
                    cluster.add_node(), cluster.remove_node(victim)
                )
                assert victim not in cluster.nodes
                assert join["node"] in cluster.nodes
                for key in keys:
                    assert await client.get(key) == key.encode()

        run(body())


class TestInvalFencing:
    """A holder that does not ack an INVAL must fence the write, not be
    logged over — the acked write would otherwise be stale-readable."""

    def test_unacked_inval_fails_the_write(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                await client.set("fk", b"v1")
                owner_name, holder_name = cluster.ring.preference("fk", 2)
                owner = cluster.nodes[owner_name]
                holder = cluster.nodes[holder_name]
                assert holder.replica_store.get("fk") == b"v1"

                async def never_acks(h, key, version):
                    return False

                original = owner._inval_one
                owner._inval_one = never_acks
                with pytest.raises(ServerError):
                    await client.set("fk", b"v2")
                # not acked, and nothing moved: the replica still equals
                # the last *acked* value, so no reader can go stale
                assert owner.store.get("fk") == b"v1"
                assert holder.replica_store.get("fk") == b"v1"
                assert holder_name in owner._pending_invals.get("fk", ())
                # the peer recovers: the next write clears the debt first
                owner._inval_one = original
                assert await client.set("fk", b"v2")
                assert "fk" not in owner._pending_invals
                assert await client.get("fk") == b"v2"
                assert holder.replica_store.get("fk") in (b"v2", None)

        run(body())

    def test_debt_to_a_departed_member_clears(self):
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                name = cluster.ring.owner("dk")
                node = cluster.nodes[name]
                # a holder that left the cluster also left read routing:
                # nothing of it remains to invalidate
                node._pending_invals["dk"] = {"gone-node"}
                assert await client.set("dk", b"v") is True
                assert "dk" not in node._pending_invals

        run(body())

    def test_relinquish_hands_unacked_holders_to_the_adopter(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                await client.set("ik", b"v1")
                owner_name, holder_name = cluster.ring.preference("ik", 2)
                owner = cluster.nodes[owner_name]

                async def never_acks(h, key, version):
                    return False

                owner._inval_one = never_acks
                failed = await owner.relinquish_key("ik")
                assert failed == (holder_name,)
                third = next(n for n in cluster.nodes.values()
                             if n.name != owner_name)
                third.inherit_pending("ik", failed)
                assert holder_name in third._pending_invals["ik"]
                third.inherit_pending("ik2", (third.name,))  # self: skipped
                assert "ik2" not in third._pending_invals

        run(body())

    def test_concurrent_fanout_debt_is_merged_not_overwritten(self):
        # the eviction path fans out without the key's write lock, so a
        # second round can park debt while the first awaits its acks; the
        # completing round must merge its result into the pending set
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=64) as cluster:
                node = next(iter(cluster.nodes.values()))

                async def flaky(holder, key, version):
                    # a concurrent fan-out parks its own debt mid-flight
                    node._pending_invals.setdefault(key, set()).add("parked")
                    return holder != "bad"

                node._inval_one = flaky
                with pytest.raises(InvalidationError):
                    await node._invalidate("ck", 1, ["bad", "good"])
                assert node._pending_invals["ck"] == {"bad", "parked"}

                node._pending_invals.clear()
                await node._invalidate("sk", 1, ["good"])
                # the fully-acked round clears only its own targets
                assert node._pending_invals["sk"] == {"parked"}

        run(body())

    def test_relinquish_waits_for_the_key_write_lock(self):
        # migration must not interleave with a half-done write to the key
        async def body():
            async with LocalCluster(2, admission="always",
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                await client.set("rk", b"v1")
                owner = cluster.nodes[cluster.ring.owner("rk")]
                lock = owner._key_lock("rk")
                await lock.acquire()
                task = asyncio.ensure_future(owner.relinquish_key("rk"))
                await asyncio.sleep(0.05)
                assert not task.done()      # blocked on the writer's lock
                lock.release()
                await task
                assert owner.store.get("rk") is None

        run(body())


class TestPessimisticReplication:
    """A timed-out REPL push may still land at the peer — the holder must
    be tracked before the push, not only on a confirmed accept."""

    def test_timed_out_push_keeps_holder_tracked(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                owner_name, holder_name = cluster.ring.preference("pk", 2)
                owner = cluster.nodes[owner_name]

                async def push_times_out(key, version, value):
                    raise asyncio.TimeoutError

                owner._peers[holder_name].repl = push_times_out
                assert await client.set("pk", b"v1")
                # outcome unknown: the holder stays tracked so the next
                # write's INVAL fan-out reaches a late-landing copy
                assert holder_name in owner.directory.holders_of("pk")

        run(body())

    def test_confirmed_stale_push_untracks_the_holder(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client()
                owner_name, holder_name = cluster.ring.preference("sk", 2)
                owner = cluster.nodes[owner_name]
                holder = cluster.nodes[holder_name]
                holder.replica_store.invalidate("sk", 10 ** 6)
                assert await client.set("sk", b"v1")
                # STALE is a proof the peer kept nothing
                assert holder_name not in owner.directory.holders_of("sk")
                assert owner.directory.races == 0

        run(body())


class TestMigrationGuards:
    def test_maybe_adopt_defers_to_fresh_writes(self):
        cluster = LocalCluster(1, admission="always")
        node = next(iter(cluster.nodes.values()))
        node.versions["mk"] = 5  # the new owner already took a client write
        assert node.maybe_adopt("mk", b"migrated", 3) is False
        assert node.store.get("mk") is None
        assert node.maybe_adopt("other", b"migrated", 3) is True
        assert node.store.get("other") == b"migrated"


class TestFloorAging:
    def test_young_floors_survive_the_count_bound(self):
        rs = ReplicaStore(1)  # count bound would be 4
        for i in range(10):
            rs.invalidate(f"k{i}", 5)
        # younger than floor_min_age: kept, so a delayed REPL of any
        # invalidated key still cannot resurrect an old value
        assert len(rs._floor) == 10
        for i in range(10):
            assert rs.put(f"k{i}", 4, b"late", "o") == (False, [])

    def test_aged_floors_are_evicted_past_the_bound(self):
        rs = ReplicaStore(1, floor_min_age=0.0)
        for i in range(10):
            rs.invalidate(f"k{i}", 5)
        assert len(rs._floor) <= 4


class TestVersionCompaction:
    def test_dead_counters_fold_into_the_base(self):
        cluster = LocalCluster(1, admission="always",
                               data_capacity_per_node=8)
        node = next(iter(cluster.nodes.values()))
        node.store.force_set("live", b"v")
        node.versions["live"] = 3
        node.versions.update({f"dead:{i}": i + 1 for i in range(2000)})
        node._compact_versions()
        assert len(node.versions) < 100  # the dead tail is gone
        assert node.versions["live"] == 3  # stored keys keep their counter
        # monotonicity survives the prune: every future assignment starts
        # above every version this owner ever handed out
        assert node.version_of("dead:1999") >= 2000
        assert node.version_of("never-seen") >= 2000


class TestClientCancellation:
    def test_cancelled_request_tears_down_its_connection(self):
        async def body():
            async def never_answer(reader, writer):
                await asyncio.sleep(30)

            server = await asyncio.start_server(never_answer, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = CacheClient("127.0.0.1", port, pool_size=1)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(client.ping(), 0.2)
            # the connection with a request in flight was discarded, not
            # repooled — a late response can never poison the next request
            assert client._open == 0
            assert client._pool.qsize() == 0
            await client.close()
            server.close()
            await server.wait_closed()

        run(body())


class TestConsistencyStorm:
    def test_storm_sees_no_stale_reads(self):
        async def body():
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=128) as cluster:
                client = cluster.client(read_replicas=True)
                report = await run_storm(
                    client, num_keys=12, writers=3, readers=6,
                    writes_per_writer=30,
                )
                assert report.ok, report.to_dict()
                assert report.writes > 0 and report.reads > 0
                snap = cluster.status_snapshot()
                assert snap["protocol_races"] == 0

        run(body())

    def test_storm_survives_eviction_pressure(self):
        async def body():
            # per-node capacity far below the keyset: DataRepl/TagRepl
            # invalidations fire constantly
            async with LocalCluster(3, admission="always", replicas=2,
                                    data_capacity_per_node=8) as cluster:
                client = cluster.client(read_replicas=True)
                report = await run_storm(
                    client, num_keys=24, writers=4, readers=4,
                    writes_per_writer=25,
                )
                assert report.ok, report.to_dict()

        run(body())

    def test_storm_after_join_stays_consistent(self):
        async def body():
            async with LocalCluster(2, admission="always", replicas=2,
                                    data_capacity_per_node=64) as cluster:
                client = cluster.client(read_replicas=True)
                await run_storm(client, num_keys=8, writers=2, readers=2,
                                writes_per_writer=10)
                await cluster.add_node()
                report = await run_storm(
                    client, num_keys=8, writers=2, readers=4,
                    writes_per_writer=20,
                )
                assert report.ok, report.to_dict()

        run(body())
