"""End-to-end coherence behaviour through the System (stores, upgrades,
invalidations across private caches)."""

from repro.hierarchy.config import LLCSpec, SystemConfig
from repro.hierarchy.system import System
from repro.workloads import Trace, Workload


def make_system(spec=None, traces=None):
    wl = Workload("coh", traces)
    return System(SystemConfig(llc=spec or LLCSpec.conventional(8)), wl)


def idle_traces(n, start_core, end_core):
    return [
        Trace(f"idle{c}", [1] * n, [((c + 1) << 30)] * n, [0] * n)
        for c in range(start_core, end_core)
    ]


class TestStoresAndUpgrades:
    def test_store_after_load_counts_upgrade(self):
        n = 10
        # core 0: load X then store X repeatedly -> one upgrade at the
        # first store (the line is then dirty)
        t0 = Trace("c0", [1] * n, [0x100] * n, [0] + [1] * (n - 1))
        system = make_system(traces=[t0] + idle_traces(n, 1, 8))
        system.run(warmup_frac=0.0)
        assert system.upgrades[0] == 1

    def test_store_invalidates_sharer_copy(self):
        n = 6
        # cores 0 and 1 read X; core 2 then writes X
        t0 = Trace("c0", [1] * n, [0x100] * n, [0] * n)
        t1 = Trace("c1", [1] * n, [0x100] * n, [0] * n)
        writes = [0] * (n - 1) + [1]
        t2 = Trace("c2", [30] * n, [0x100] * n, writes)  # lags behind
        system = make_system(traces=[t0, t1, t2] + idle_traces(n, 3, 8))
        system.run(warmup_frac=0.0)
        # after the write, only core 2 may hold the line privately
        holders = [c for c, ph in enumerate(system.private) if ph.contains(0x100)]
        assert holders == [2]
        # and the directory must agree
        bank = system.banks[system._bank_of(0x100)]
        set_idx, way = bank.tags.lookup(system._local(0x100))
        assert bank.directory.sharers(set_idx, way) == [2]

    def test_dirty_write_back_travels_through_hierarchy(self):
        """A dirtied line evicted from L2 lands in the SLLC (conventional)
        or in memory/data array (reuse), never lost."""
        n = 40
        # core 0 writes line 0x100 then streams to push it out of L2
        addrs = [0x100] + [0x1000 + i * 16 for i in range(n - 1)]
        writes = [1] + [0] * (n - 1)
        t0 = Trace("c0", [1] * n, addrs, writes)
        system = make_system(traces=[t0] + idle_traces(n, 1, 8))
        system.run(warmup_frac=0.0)
        assert not system.private[0].contains(0x100)
        bank = system.banks[system._bank_of(0x100)]
        set_idx, way = bank.tags.lookup(system._local(0x100))
        assert way is not None
        assert bank._dirty[set_idx][way]  # the PUTX was absorbed

    def test_reuse_cache_putx_in_to_reaches_memory(self):
        n = 40
        addrs = [0x100] + [0x1000 + i * 16 for i in range(n - 1)]
        writes = [1] + [0] * (n - 1)
        t0 = Trace("c0", [1] * n, addrs, writes)
        system = make_system(LLCSpec.reuse(8, 4), [t0] + idle_traces(n, 1, 8))
        system.run(warmup_frac=0.0)
        # line 0x100 was written once, never reused: tag-only, so the
        # writeback went to DRAM
        assert system.dram.writes >= 1

    def test_no_upgrade_for_write_misses(self):
        n = 20
        t0 = Trace("c0", [1] * n, [0x100 + i * 4 for i in range(n)], [1] * n)
        system = make_system(traces=[t0] + idle_traces(n, 1, 8))
        system.run(warmup_frac=0.0)
        assert system.upgrades[0] == 0  # GETX misses, not UPGs
