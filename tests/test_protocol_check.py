"""Tests for the protocol model checker and table exhaustiveness.

Two jobs: (1) the regression the issue asks for — both coherence tables
cover every legal ``(State, Event)`` pair and raise their dedicated
protocol error (never a bare ``KeyError``) on illegal ones; (2) the
checker itself catches seeded violations: removed rows, broken data-flow
invariants, wrong error types and unreachable states.
"""

import dataclasses

import pytest

from repro.coherence.extended import (
    XProtocolError,
    XState,
    apply_extended,
)
from repro.coherence.protocol import ProtocolError, Transition, apply
from repro.coherence.states import Event, State
from repro.coherence.distributed import DistProtocolError, DistTransition
from repro.devtools.protocol_check import (
    all_specs,
    base_spec,
    check_all,
    check_protocol,
    distributed_spec,
    extended_spec,
    findings_to_dict,
    with_table,
)


def kinds(findings):
    return [f.kind for f in findings]


# -- exhaustiveness regression (satellite: both tables cover all legal pairs)


class TestExhaustiveness:
    @pytest.mark.parametrize("spec", [base_spec(), extended_spec()],
                             ids=["TO-MSI", "TO-MOSI"])
    def test_every_pair_is_handled_or_justified_illegal(self, spec):
        for state in spec.states:
            for event in spec.events:
                pair = (state, event)
                assert (pair in spec.table) != (pair in spec.expected_illegal), (
                    f"{spec.name}: ({state.value}, {event.value}) must be "
                    "either a transition or an expected-illegal pair"
                )

    def test_base_table_size(self):
        spec = base_spec()
        assert len(spec.table) == 22 and len(spec.expected_illegal) == 6
        assert len(spec.table) + len(spec.expected_illegal) == 4 * 7

    def test_extended_table_size(self):
        spec = extended_spec()
        assert len(spec.table) == 37 and len(spec.expected_illegal) == 12
        assert len(spec.table) + len(spec.expected_illegal) == 7 * 7

    @pytest.mark.parametrize("spec", [base_spec(), extended_spec()],
                             ids=["TO-MSI", "TO-MOSI"])
    def test_illegal_pairs_raise_protocol_error_not_keyerror(self, spec):
        for state, event in spec.expected_illegal:
            with pytest.raises(spec.error_type) as excinfo:
                spec.apply_fn(state, event)
            assert not isinstance(excinfo.value, KeyError)
            assert state.value in str(excinfo.value)

    def test_base_examples(self):
        with pytest.raises(ProtocolError):
            apply(State.TO, Event.DATA_REPL)
        with pytest.raises(XProtocolError):
            apply_extended(XState.M, Event.UPG)


class TestShippedTablesAreSound:
    def test_no_findings_on_either_protocol(self):
        assert check_all() == []

    def test_specs_report_both_protocols(self):
        assert [s.name for s in all_specs()] == ["TO-MSI", "TO-MOSI"]

    def test_cluster_flag_appends_the_distributed_spec(self):
        assert [s.name for s in all_specs(cluster=True)] == [
            "TO-MSI", "TO-MOSI", "TO-MSI-cluster",
        ]


# -- the distributed (cluster) table ------------------------------------------


class TestDistributedSpec:
    def test_every_pair_is_handled_or_justified_illegal(self):
        spec = distributed_spec()
        for state in spec.states:
            for event in spec.events:
                pair = (state, event)
                assert (pair in spec.table) != (pair in spec.expected_illegal)

    def test_table_size(self):
        spec = distributed_spec()
        assert len(spec.table) == 15 and len(spec.expected_illegal) == 13
        assert len(spec.table) + len(spec.expected_illegal) == 4 * 7

    def test_illegal_pairs_raise_dist_protocol_error(self):
        spec = distributed_spec()
        for state, event in spec.expected_illegal:
            with pytest.raises(DistProtocolError):
                spec.apply_fn(state, event)

    def test_zero_findings(self):
        assert check_protocol(distributed_spec()) == []

    def test_missing_invalidation_flag_reported(self):
        # leaving S without invalidates_replicas = stale reads survive the
        # ack; the replica-safety check must refuse the table
        spec = distributed_spec()
        table = dict(spec.table)
        table[(State.S, Event.GETX)] = DistTransition(State.M)
        findings = check_protocol(with_table(spec, table))
        assert any(
            f.kind == "replica-safety" and "must be invalidated" in f.message
            for f in findings
        )

    def test_spurious_invalidation_flag_reported(self):
        spec = distributed_spec()
        table = dict(spec.table)
        table[(State.S, Event.GETS)] = DistTransition(
            State.S, invalidates_replicas=True
        )
        findings = check_protocol(with_table(spec, table))
        assert any(
            f.kind == "replica-safety" and "destroys copies" in f.message
            for f in findings
        )

    def test_replica_safety_skipped_without_sharer_states(self):
        # the base single-chip spec has no sharer_states entry, so a table
        # without the cross-node flag is not a finding there
        assert check_protocol(base_spec()) == []


# -- seeded violations: the checker must catch each defect class -------------


class TestSeededViolations:
    def test_removed_transition_reported_unhandled(self):
        spec = base_spec()
        table = dict(spec.table)
        del table[(State.TO, Event.GETS)]
        findings = check_protocol(with_table(spec, table))
        assert "unhandled" in kinds(findings)
        (f,) = [f for f in findings if f.kind == "unhandled"]
        assert (f.state, f.event) == ("TO", "GETS")

    def test_transition_on_illegal_pair_reported_unexpected(self):
        spec = base_spec()
        table = dict(spec.table)
        table[(State.I, Event.PUTS)] = Transition(State.I)
        findings = check_protocol(with_table(spec, table))
        assert "unexpected" in kinds(findings)

    def test_missing_allocate_flag_breaks_invariant(self):
        spec = base_spec()
        table = dict(spec.table)
        table[(State.TO, Event.GETS)] = Transition(State.S)  # no allocate
        findings = check_protocol(with_table(spec, table))
        assert any(
            f.kind == "invariant" and "allocates_data" in f.message
            for f in findings
        )

    def test_spurious_deallocate_breaks_invariant(self):
        spec = base_spec()
        table = dict(spec.table)
        table[(State.S, Event.GETS)] = Transition(
            State.S, deallocates_data=True
        )
        findings = check_protocol(with_table(spec, table))
        assert any(
            f.kind == "invariant" and "deallocates_data" in f.message
            for f in findings
        )

    def test_tag_replacement_not_ending_at_I_reported(self):
        spec = base_spec()
        table = dict(spec.table)
        table[(State.TO, Event.TAG_REPL)] = Transition(State.TO)
        findings = check_protocol(with_table(spec, table))
        assert any(
            f.kind == "invariant" and "tag replacement" in f.message
            for f in findings
        )

    def test_dropping_dirty_copy_without_writeback_reported(self):
        spec = extended_spec()
        table = dict(spec.table)
        broken = dataclasses.replace(
            table[(XState.O, Event.DATA_REPL)], writeback_to_memory=False
        )
        table[(XState.O, Event.DATA_REPL)] = broken
        findings = check_protocol(with_table(spec, table))
        assert any(
            f.kind == "invariant" and "up-to-date copy" in f.message
            for f in findings
        )

    def test_unreachable_state_reported(self):
        spec = base_spec()
        table = dict(spec.table)
        # sever both entries into TO's data-array group: S and M become
        # unreachable from I
        del table[(State.I, Event.GETS)]
        del table[(State.I, Event.GETX)]
        findings = check_protocol(with_table(spec, table))
        unreachable = {f.state for f in findings if f.kind == "unreachable"}
        assert unreachable == {"TO", "S", "M"}

    def test_keyerror_instead_of_protocol_error_reported(self):
        spec = base_spec()

        def raw_lookup(state, event):
            return spec.table[(state, event)]  # raises KeyError when absent

        bad = dataclasses.replace(spec, apply_fn=raw_lookup)
        findings = check_protocol(bad)
        assert any(
            f.kind == "bad-error" and "KeyError" in f.message
            for f in findings
        )

    def test_closure_violation_reported(self):
        spec = base_spec()
        table = dict(spec.table)
        table[(State.S, Event.GETS)] = Transition(XState.S)  # foreign enum
        findings = check_protocol(with_table(spec, table))
        assert "closure" in kinds(findings)


class TestReportFormats:
    def test_json_schema(self):
        specs = all_specs()
        report = findings_to_dict(check_all(specs), specs)
        assert report["version"] == 1
        assert [p["name"] for p in report["protocols"]] == [
            "TO-MSI", "TO-MOSI",
        ]
        base, ext = report["protocols"]
        assert base["transitions"] == 22 and ext["transitions"] == 37
        assert ["I", "DataRepl"] in base["expected_illegal"]
        assert report["findings"] == []

    def test_findings_serialise(self):
        spec = base_spec()
        table = dict(spec.table)
        del table[(State.TO, Event.GETS)]
        findings = check_protocol(with_table(spec, table))
        payload = findings_to_dict(findings, [spec])
        assert payload["findings"][0]["kind"] == "unhandled"
        assert set(payload["findings"][0]) == {
            "protocol", "kind", "state", "event", "message",
        }
