"""Tests for the flow analyzer behind ``repro analyze``.

Each FLOW rule gets seeded-violation fixtures (must fire), negative
fixtures (must stay silent) and an annotation fixture (``# repro:
atomic=<reason>`` silences it with a stated invariant).  The JSON report
reuses the lint schema, the output is pinned byte-deterministic, and the
baseline ratchet's suppress/grow semantics are covered directly.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.__main__ import main
from repro.devtools.flow import (
    FLOW_RULES,
    FlowEngine,
    apply_baseline,
    default_flow_rules,
    finding_counts,
    load_baseline,
    run_analyze,
)
from repro.devtools.flow.protocol_spec import (
    CLIENT_FILES,
    CODEC_FILE,
    SPEC,
    TRANSPORT_FILE,
    documented_verbs,
    internal_verbs,
    verbs_for_framing,
    verbs_for_layer,
)
from repro.devtools.lint.engine import format_json

#: the real source tree, wherever the package was imported from
SRC_DIR = Path(repro.__file__).resolve().parent


def analyze_snippet(source, module="repro.cache.fixture", select=None):
    """Analyze a dedented source string as if it were ``module``'s file."""
    engine = FlowEngine(default_flow_rules(select))
    path = "src/" + module.replace(".", "/") + ".py"
    return engine.analyze_sources({path: textwrap.dedent(source)})


def codes(findings):
    return [f.rule for f in findings]


# -- FLOW001: async atomicity -------------------------------------------------


class TestAsyncAtomicity:
    RMW = """
    import asyncio

    class Counter:
        async def bump(self):
            v = self.count
            await asyncio.sleep(0)
            self.count = v + 1
    """

    def test_rmw_across_await_fires(self):
        findings = analyze_snippet(self.RMW)
        assert codes(findings) == ["FLOW001"]
        assert "Counter.count" in findings[0].message
        assert "suspension point" in findings[0].message

    def test_no_suspension_between_is_silent(self):
        assert analyze_snippet("""
        import asyncio

        class Counter:
            async def bump(self):
                v = self.count
                self.count = v + 1
                await asyncio.sleep(0)
        """) == []

    def test_lock_held_across_the_gap_is_silent(self):
        assert analyze_snippet("""
        import asyncio

        class Counter:
            def __init__(self):
                self._lock = asyncio.Lock()
                self.count = 0

            async def bump(self):
                async with self._lock:
                    v = self.count
                    await asyncio.sleep(0)
                    self.count = v + 1
        """) == []

    def test_lock_released_before_the_write_fires(self):
        findings = analyze_snippet("""
        import asyncio

        class Counter:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def bump(self):
                async with self._lock:
                    v = self.count
                    await asyncio.sleep(0)
                self.count = v + 1
        """)
        assert "FLOW001" in codes(findings)

    def test_non_async_class_is_not_shared(self):
        # no async method anywhere: single-coroutine by construction
        assert analyze_snippet("""
        class Plain:
            def bump(self):
                v = self.count
                self.count = v + 1
        """) == []

    def test_module_global_rmw_fires(self):
        findings = analyze_snippet("""
        import asyncio

        REGISTRY = {}

        async def register(name):
            n = REGISTRY.get(name, 0)
            await asyncio.sleep(0)
            REGISTRY[name] = n + 1
        """)
        assert codes(findings) == ["FLOW001"]
        assert "REGISTRY" in findings[0].message

    def test_interprocedural_read_through_helper(self):
        # the read happens in a sync helper; one level of call-graph
        # inlining still connects it to the post-await write
        findings = analyze_snippet("""
        import asyncio

        class Counter:
            def peek(self):
                return self.count

            async def bump(self):
                v = self.peek()
                await asyncio.sleep(0)
                self.count = v + 1
        """)
        assert codes(findings) == ["FLOW001"]

    def test_trailing_annotation_suppresses(self):
        findings = analyze_snippet("""
        import asyncio

        class Counter:
            async def bump(self):
                v = self.count
                await asyncio.sleep(0)
                self.count = v + 1  # repro: atomic=single writer task owns this counter
        """)
        assert findings == []

    def test_own_line_annotation_covers_the_next_line(self):
        findings = analyze_snippet("""
        import asyncio

        class Counter:
            async def bump(self):
                v = self.count
                await asyncio.sleep(0)
                # repro: atomic=single writer task owns this counter
                self.count = v + 1
        """)
        assert findings == []

    def test_def_line_annotation_covers_the_function(self):
        findings = analyze_snippet("""
        import asyncio

        class Counter:
            async def bump(self):  # repro: atomic=bump is only called from one task
                v = self.count
                await asyncio.sleep(0)
                self.count = v + 1
        """)
        assert findings == []

    def test_annotation_without_reason_does_not_suppress(self):
        findings = analyze_snippet("""
        import asyncio

        class Counter:
            async def bump(self):
                v = self.count
                await asyncio.sleep(0)
                self.count = v + 1  # repro: atomic=
        """)
        assert codes(findings) == ["FLOW001"]

    def test_paired_counter_augassigns_are_not_flagged(self):
        # each augassign reads and writes on its own line; pairing the
        # decrement with the increment's read would ban every in-flight
        # counter (the server's _handle_connection pattern)
        assert analyze_snippet("""
        import asyncio

        class Gate:
            async def handle(self):
                self.inflight += 1
                try:
                    await asyncio.sleep(0)
                finally:
                    self.inflight -= 1
        """) == []


# -- FLOW002: lock discipline -------------------------------------------------


class TestLockDiscipline:
    def test_manual_acquire_without_release_fires(self):
        findings = analyze_snippet("""
        import asyncio

        class S:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def go(self):
                await self._lock.acquire()
                self.x = 1
        """)
        assert "FLOW002" in codes(findings)
        assert any("release" in f.message for f in findings)

    def test_release_in_finally_is_silent(self):
        assert analyze_snippet("""
        import asyncio

        class S:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def go(self):
                await self._lock.acquire()
                try:
                    self.x = 1
                finally:
                    self._lock.release()
        """) == []

    def test_awaiting_a_callee_that_reacquires_the_held_lock(self):
        findings = analyze_snippet("""
        import asyncio

        class S:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def inner(self):
                async with self._lock:
                    self.x = 1

            async def outer(self):
                async with self._lock:
                    await self.inner()
        """)
        assert "FLOW002" in codes(findings)
        assert any("reentrant" in f.message for f in findings)

    def test_write_bypassing_a_relied_on_lock_fires(self):
        findings = analyze_snippet("""
        import asyncio

        class S:
            def __init__(self):
                self._lock = asyncio.Lock()
                self.count = 0

            async def bump(self):
                async with self._lock:
                    v = self.count
                    await asyncio.sleep(0)
                    self.count = v + 1

            async def reset(self):
                self.count = 0
        """)
        assert codes(findings) == ["FLOW002"]
        assert "without" in findings[0].message
        assert "self._lock" in findings[0].message

    def test_constructor_writes_are_exempt_from_reliance(self):
        # __init__ runs before the instance is shared; only the
        # post-construction bypass in ``reset`` would fire (absent here)
        assert analyze_snippet("""
        import asyncio

        class S:
            def __init__(self):
                self._lock = asyncio.Lock()
                self.count = 0

            async def bump(self):
                async with self._lock:
                    v = self.count
                    await asyncio.sleep(0)
                    self.count = v + 1
        """) == []


# -- FLOW003: wire-protocol conformance --------------------------------------


SERVICE_ARMS = {
    "GET": 'writer.write(b"VALUE 0\\n")',
    "SET": 'writer.write(b"STORED\\n")',
    "DEL": 'writer.write(b"DELETED\\n")',
    "STATS": 'writer.write(b"STATS 0\\n")',
    "METRICS": 'writer.write(b"METRICS 0\\n")',
    "PING": 'writer.write(b"PONG\\n")',
    "QUIT": 'writer.write(b"BYE\\n")',
}


def fake_server_source(verbs):
    """A minimal ``_serve_request`` dispatching exactly ``verbs``."""
    lines = [
        "class CacheServer:",
        "    async def _serve_request(self, line, reader, writer):",
        "        parts = line.decode('utf-8').split()",
        "        cmd = parts[0].upper() if parts else ''",
    ]
    keyword = "if"
    for verb in verbs:
        arm = SERVICE_ARMS.get(verb, f'writer.write(b"{verb}ED\\n")')
        lines.append(f"        {keyword} cmd == {verb!r}:")
        lines.append(f"            {arm}")
        keyword = "elif"
    return "\n".join(lines) + "\n"


def analyze_tree(sources, select=None):
    engine = FlowEngine(default_flow_rules(select))
    return engine.analyze_sources(sources)


class TestProtocolConformance:
    SERVICE_VERBS = sorted(verbs_for_layer("service"))
    SERVER = "src/repro/service/server.py"

    def test_spec_layers_are_known(self):
        assert documented_verbs() >= {"GET", "SET", "DEL", "QUIT", "DRAIN"}
        for verb in SPEC:
            assert verb.layers and set(verb.layers) <= {"service", "cluster"}

    def test_conforming_fake_server_is_silent(self):
        sources = {self.SERVER: fake_server_source(self.SERVICE_VERBS)}
        assert analyze_tree(sources, select={"FLOW003"}) == []

    def test_undeclared_dispatch_fires(self):
        # the acceptance gate: a server verb missing from the spec fails
        sources = {
            self.SERVER: fake_server_source(self.SERVICE_VERBS + ["FROB"])
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'FROB'" in findings[0].message
        assert "add a spec entry" in findings[0].message

    def test_declared_but_never_dispatched_fires(self):
        verbs = [v for v in self.SERVICE_VERBS if v != "QUIT"]
        sources = {self.SERVER: fake_server_source(verbs)}
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'QUIT'" in findings[0].message
        assert "never dispatches" in findings[0].message

    def test_undocumented_client_send_fires(self):
        sources = {
            self.SERVER: fake_server_source(self.SERVICE_VERBS),
            "src/repro/service/client.py": textwrap.dedent("""
                class CacheClient:
                    async def _request(self, payload):
                        return [], b""

                    async def frob(self):
                        await self._request(b"FROB 1\\n")
            """),
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'FROB'" in findings[0].message
        assert "does not document" in findings[0].message

    def test_no_sender_check_needs_every_client_file(self):
        # with only one of the client files present, a dispatched verb
        # without a visible sender is NOT dead surface — the sender may
        # live in a file outside the analyzed tree
        sources = {
            self.SERVER: fake_server_source(self.SERVICE_VERBS),
            "src/repro/service/client.py": (
                "class CacheClient:\n"
                "    async def _request(self, payload):\n"
                "        return [], b''\n"
            ),
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert findings == []

    def test_dispatched_verb_with_no_sender_fires_when_clients_complete(self):
        sources = {self.SERVER: fake_server_source(self.SERVICE_VERBS)}
        for client in CLIENT_FILES:
            sources.setdefault(
                "src/" + client,
                "class C:\n"
                "    async def _request(self, payload):\n"
                "        return [], b''\n",
            )
        findings = analyze_tree(sources, select={"FLOW003"})
        assert any(
            "no client ever sends" in f.message and "'QUIT'" in f.message
            for f in findings
        )

    def test_real_tree_conforms(self):
        findings, _ = run_analyze([SRC_DIR], select={"FLOW003"})
        assert findings == []


def fake_framed_server_source(v1_verbs, v2_verbs):
    """A server dispatching ``v1_verbs`` in ``_serve_request`` and
    ``v2_verbs`` in ``_serve_frame`` (framing-aware shape)."""
    src = fake_server_source(v1_verbs)
    lines = [
        "    async def _serve_frame(self, cmd, fields, seq, enc, writer):",
    ]
    keyword = "if"
    for verb in v2_verbs:
        lines.append(f"        {keyword} cmd == {verb!r}:")
        lines.append(f"            writer.write(b{verb!r})")
        keyword = "elif"
    return src + "\n".join(lines) + "\n"


class TestFramingConformance:
    """FLOW003's version-aware half: v1 vs v2 dispatch surfaces and the
    VERB_IDS / V1_LINES framing tables."""

    SERVER = "src/repro/service/server.py"
    V1_VERBS = sorted(verbs_for_layer("service", "v1") - internal_verbs())
    V2_VERBS = sorted(verbs_for_layer("service", "v2") - internal_verbs())

    def test_spec_declares_batch_verbs_v2_only(self):
        assert {"MGET", "MSET", "MDEL"} <= verbs_for_framing("v2")
        assert not ({"MGET", "MSET", "MDEL"} & verbs_for_framing("v1"))
        assert "HELLO" in internal_verbs()

    def test_conforming_framed_server_is_silent(self):
        sources = {
            self.SERVER: fake_framed_server_source(
                self.V1_VERBS, self.V2_VERBS
            )
        }
        assert analyze_tree(sources, select={"FLOW003"}) == []

    def test_verb_missing_from_v2_framing_fires(self):
        # MGET declared for v2 but only the v1 loop grew... no arm: finding
        v2 = [v for v in self.V2_VERBS if v != "MGET"]
        sources = {
            self.SERVER: fake_framed_server_source(self.V1_VERBS, v2)
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'MGET'" in findings[0].message
        assert "never dispatches" in findings[0].message
        assert "v2" in findings[0].message

    def test_v2_only_verb_in_v1_dispatch_fires(self):
        # wiring a batch verb into the v1 line loop without declaring the
        # framing in the spec is a finding
        sources = {
            self.SERVER: fake_framed_server_source(
                self.V1_VERBS + ["MGET"], self.V2_VERBS
            )
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'MGET'" in findings[0].message
        assert "v1" in findings[0].message
        assert "add a spec entry" in findings[0].message

    def test_call_sender_with_undocumented_verb_fires(self):
        sources = {
            self.SERVER: fake_framed_server_source(
                self.V1_VERBS, self.V2_VERBS
            ),
            "src/repro/service/client.py": textwrap.dedent("""
                class CacheClient:
                    async def frob(self):
                        return await self.transport.call("FROB", "k")
            """),
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'FROB'" in findings[0].message
        assert "does not document" in findings[0].message

    def _table_source(self, name, verbs):
        entries = ", ".join(f"{v!r}: {i}" for i, v in enumerate(verbs))
        return f"{name} = {{{entries}}}\n"

    def test_codec_table_missing_verb_fires(self):
        verbs = sorted(verbs_for_framing("v2") - {"MDEL"})
        sources = {
            "src/" + CODEC_FILE: self._table_source("VERB_IDS", verbs)
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'MDEL'" in findings[0].message
        assert "VERB_IDS" in findings[0].message

    def test_codec_table_extra_verb_fires(self):
        verbs = sorted(verbs_for_framing("v2")) + ["FROB"]
        sources = {
            "src/" + CODEC_FILE: self._table_source("VERB_IDS", verbs)
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'FROB'" in findings[0].message

    def test_v1_table_is_checked_in_transport(self):
        verbs = sorted(verbs_for_framing("v1") - {"QUIT"})
        sources = {
            "src/" + TRANSPORT_FILE: self._table_source("V1_LINES", verbs)
        }
        findings = analyze_tree(sources, select={"FLOW003"})
        assert codes(findings) == ["FLOW003"]
        assert "'QUIT'" in findings[0].message
        assert "V1_LINES" in findings[0].message

    def test_stub_transport_without_table_is_silent(self):
        # a partial tree (no V1_LINES dict at all) proves nothing
        sources = {
            "src/" + TRANSPORT_FILE: "class Transport:\n    pass\n"
        }
        assert analyze_tree(sources, select={"FLOW003"}) == []


# -- engine mechanics ---------------------------------------------------------


class TestEngine:
    def test_syntax_error_is_reported_not_raised(self):
        findings = analyze_snippet("def broken(:\n")
        assert codes(findings) == ["FLOW000"]
        assert "syntax error" in findings[0].message

    def test_registry_has_the_three_flow_rules(self):
        assert sorted(FLOW_RULES) == ["FLOW001", "FLOW002", "FLOW003"]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule ids"):
            default_flow_rules({"FLOW999"})

    def test_select_limits_rules(self):
        src = """
        import asyncio

        class S:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def go(self):
                await self._lock.acquire()
                v = self.x
                await asyncio.sleep(0)
                self.x = v + 1
        """
        all_codes = set(codes(analyze_snippet(src)))
        assert all_codes == {"FLOW001", "FLOW002"}
        only = codes(analyze_snippet(src, select={"FLOW002"}))
        assert set(only) == {"FLOW002"}

    def test_json_report_matches_the_lint_schema(self):
        findings = analyze_snippet(TestAsyncAtomicity.RMW)
        engine = FlowEngine(default_flow_rules())
        report = json.loads(format_json(findings, 1, engine.rules))
        assert report["version"] == 1
        assert {r["id"] for r in report["rules"]} == set(FLOW_RULES)
        (finding,) = report["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message",
        }
        assert finding["rule"] == "FLOW001"

    def test_output_is_deterministic_across_runs_and_input_order(self):
        a = {
            "src/repro/cache/a.py": textwrap.dedent(TestAsyncAtomicity.RMW),
            "src/repro/cache/b.py": (
                "import asyncio\n"
                "class Gauge:\n"
                "    async def tick(self):\n"
                "        v = self.level\n"
                "        await asyncio.sleep(0)\n"
                "        self.level = v + 1\n"
            ),
        }
        b = dict(reversed(list(a.items())))  # same files, reversed order

        def render(sources):
            engine = FlowEngine(default_flow_rules())
            findings = engine.analyze_sources(sources)
            return format_json(findings, engine.files_checked, engine.rules)

        first, second, reordered = render(a), render(a), render(b)
        assert first == second == reordered
        assert json.loads(first)["findings"]


# -- baseline ratchet ---------------------------------------------------------


class TestBaseline:
    def findings(self):
        return analyze_snippet(TestAsyncAtomicity.RMW)

    def test_finding_counts_shape(self):
        counts = finding_counts(self.findings())
        assert counts == {"FLOW001": {"src/repro/cache/fixture.py": 1}}

    def test_recorded_count_suppresses(self):
        baseline = {"version": 1, "counts": finding_counts(self.findings())}
        kept, suppressed = apply_baseline(self.findings(), baseline)
        assert kept == [] and suppressed == 1

    def test_grown_count_keeps_all_findings(self):
        src = textwrap.dedent(TestAsyncAtomicity.RMW) + textwrap.dedent("""
        class Gauge:
            async def tick(self):
                v = self.level
                await asyncio.sleep(0)
                self.level = v + 1
        """)
        engine = FlowEngine(default_flow_rules())
        findings = engine.analyze_sources({"src/repro/cache/fixture.py": src})
        assert len(findings) == 2
        baseline = {
            "version": 1,
            "counts": {"FLOW001": {"src/repro/cache/fixture.py": 1}},
        }
        kept, suppressed = apply_baseline(findings, baseline)
        # the pair grew 1 -> 2: the report shows full context, not a delta
        assert len(kept) == 2 and suppressed == 0

    def test_new_pair_is_never_suppressed(self):
        kept, suppressed = apply_baseline(
            self.findings(), {"version": 1, "counts": {}}
        )
        assert len(kept) == 1 and suppressed == 0

    def test_load_rejects_missing_and_malformed_files(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            load_baseline(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(bad)
        bad.write_text('{"version": 99, "counts": {}}')
        with pytest.raises(ValueError, match="baseline must be"):
            load_baseline(bad)

    def test_committed_baseline_is_empty(self):
        repo_root = Path(__file__).resolve().parent.parent
        baseline_path = repo_root / "analyze-baseline.json"
        if not baseline_path.exists():
            pytest.skip("not running from a repo checkout")
        baseline = load_baseline(baseline_path)
        assert baseline["counts"] == {}


# -- the CLI ------------------------------------------------------------------


class TestAnalyzeCommand:
    def seeded_tree(self, tmp_path):
        bad = tmp_path / "repro" / "cache" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent(TestAsyncAtomicity.RMW))
        return bad

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["analyze", str(SRC_DIR)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        self.seeded_tree(tmp_path)
        assert main(["analyze", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FLOW001" in out and "seeded.py" in out

    def test_json_output_parses(self, tmp_path, capsys):
        self.seeded_tree(tmp_path)
        assert main(["analyze", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert [f["rule"] for f in report["findings"]] == ["FLOW001"]

    def test_baseline_suppresses_and_ratchets(self, tmp_path, capsys):
        bad = self.seeded_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "counts": {"FLOW001": {str(bad): 1}},
        }))
        assert main(
            ["analyze", str(tmp_path), "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        # a second violation in the same file grows the (rule, file) count
        bad.write_text(
            bad.read_text()
            + "\nclass Gauge:\n"
              "    async def tick(self):\n"
              "        v = self.level\n"
              "        await asyncio.sleep(0)\n"
              "        self.level = v + 1\n"
        )
        assert main(
            ["analyze", str(tmp_path), "--baseline", str(baseline)]
        ) == 1
        assert "FLOW001" in capsys.readouterr().out

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        self.seeded_tree(tmp_path)
        missing = tmp_path / "missing.json"
        assert main(
            ["analyze", str(tmp_path), "--baseline", str(missing)]
        ) == 2
        assert "not found" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id, cls in FLOW_RULES.items():
            assert rule_id in out
            first_doc_line = (cls.__doc__ or "").strip().splitlines()[0]
            assert first_doc_line.strip() in out

    def test_unknown_select_code_is_usage_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path), "--select", "FLOW999"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err
