"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    EXAMPLE_MIX,
    SPEC_APPS,
    SPEC_PROFILES,
    Trace,
    build_workload,
    generate_trace,
    make_mixes,
    zipf_sample,
    zipf_weights,
)
from repro.workloads.profiles import AppProfile
from repro.workloads.synthetic import _MID_BASE, _STREAM_BASE, _WARM_BASE


class TestProfiles:
    def test_table5_apps_all_present(self):
        assert len(SPEC_APPS) == 29
        assert set(SPEC_APPS) == set(SPEC_PROFILES)

    def test_probabilities_valid(self):
        for p in SPEC_PROFILES.values():
            assert 0 <= p.p_stream <= 1
            assert abs(p.p_hot + p.p_warm + p.p_mid + p.p_stream - 1) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            AppProfile("bad", 100, 0.2, p_hot=0.8, hot_lines=10, p_mid=0.5, mid_lines=10)
        with pytest.raises(ValueError):
            AppProfile("bad", 100, 0.2, p_hot=0.5, hot_lines=0, p_mid=0.1, mid_lines=10)
        with pytest.raises(ValueError):
            AppProfile("bad", 100, 1.5, p_hot=0.5, hot_lines=8, p_mid=0.1, mid_lines=10)

    def test_archetypes(self):
        """Streaming apps stream; cache-friendly apps barely stream."""
        assert SPEC_PROFILES["libquantum"].p_stream > 0.1
        assert SPEC_PROFILES["namd"].p_stream < 0.01
        assert SPEC_PROFILES["mcf"].mid_lines > SPEC_PROFILES["namd"].mid_lines


class TestZipf:
    def test_weights_normalised(self):
        w = zipf_weights(100, 0.8)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[-1]

    def test_zero_exponent_uniform(self):
        w = zipf_weights(50, 0.0)
        assert np.allclose(w, 1 / 50)

    def test_sample_range_and_skew(self):
        rng = np.random.default_rng(0)
        s = zipf_sample(rng, 64, 1.0, 10_000)
        assert s.min() >= 0 and s.max() < 64
        counts = np.bincount(s, minlength=64)
        assert counts.max() > 3 * np.median(counts)  # skewed popularity

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestGenerateTrace:
    def test_deterministic(self):
        p = SPEC_PROFILES["gcc"]
        t1 = generate_trace(p, 2000, seed=5)
        t2 = generate_trace(p, 2000, seed=5)
        assert t1.addrs == t2.addrs and t1.gaps == t2.gaps and t1.writes == t2.writes

    def test_seed_changes_trace(self):
        p = SPEC_PROFILES["gcc"]
        t1 = generate_trace(p, 2000, seed=5)
        t2 = generate_trace(p, 2000, seed=6)
        assert t1.addrs != t2.addrs

    def test_memory_intensity(self):
        p = SPEC_PROFILES["mcf"]
        t = generate_trace(p, 20_000, seed=1)
        refs_per_kinst = 1000 * t.n_refs / t.total_instructions
        assert refs_per_kinst == pytest.approx(p.mem_per_kinst, rel=0.15)

    def test_write_fraction(self):
        p = SPEC_PROFILES["lbm"]
        t = generate_trace(p, 20_000, seed=1)
        assert sum(t.writes) / t.n_refs == pytest.approx(p.write_frac, abs=0.03)

    def test_regions_disjoint_and_scaled(self):
        p = SPEC_PROFILES["omnetpp"]
        t = np.array(generate_trace(p, 50_000, seed=2, scale=32).addrs)
        hot = t[t < _WARM_BASE]
        warm = t[(t >= _WARM_BASE) & (t < _MID_BASE)]
        mid = t[(t >= _MID_BASE) & (t < _STREAM_BASE)]
        assert len(hot) and len(warm) and len(mid)
        assert hot.max() < max(1, p.hot_lines // 32)  # scaled footprint
        assert (warm - _WARM_BASE).max() < max(1, p.warm_lines // 32)
        assert (mid - _MID_BASE).max() < max(1, p.mid_lines // 32)

    def test_base_addr_offsets_everything(self):
        p = SPEC_PROFILES["namd"]
        t0 = generate_trace(p, 100, seed=1, base_addr=0)
        t1 = generate_trace(p, 100, seed=1, base_addr=1 << 30)
        assert [a + (1 << 30) for a in t0.addrs] == t1.addrs

    def test_stream_is_sequential_one_pass(self):
        p = AppProfile("scan", 100, 0.0, p_hot=0.0, hot_lines=1, p_mid=0.0,
                       mid_lines=1, stream_loop_lines=1 << 21)
        t = generate_trace(p, 1000, seed=0, scale=1)
        stream = [a - _STREAM_BASE for a in t.addrs]
        assert stream == list(range(1000))

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            generate_trace(SPEC_PROFILES["gcc"], 0, seed=0)


class TestTrace:
    def test_length_consistency_enforced(self):
        with pytest.raises(ValueError):
            Trace("x", [0], [1, 2], [0, 0])

    def test_slice(self):
        t = generate_trace(SPEC_PROFILES["gcc"], 100, seed=0)
        s = t.slice(10)
        assert s.n_refs == 10 and s.addrs == t.addrs[:10]

    def test_workload_slice(self):
        wl = build_workload(EXAMPLE_MIX, 50, seed=1)
        s = wl.slice(20)
        assert s.num_cores == 8
        assert all(t.n_refs == 20 for t in s.traces)
        assert s.app_names == wl.app_names


class TestMixes:
    def test_example_mix_is_papers(self):
        assert EXAMPLE_MIX == ["gcc", "mcf", "povray", "leslie3d", "h264ref",
                               "lbm", "namd", "gcc"]

    def test_100_mixes_app_frequencies(self):
        """Paper: apps appear 16-35 times, mean 27.6."""
        mixes = make_mixes(100, 8, seed=2013)
        counts = {}
        for mix in mixes:
            for app in mix:
                counts[app] = counts.get(app, 0) + 1
        assert sum(counts.values()) == 800
        mean = sum(counts.values()) / len(counts)
        assert mean == pytest.approx(800 / 29, rel=0.01)
        assert min(counts.values()) >= 10
        assert max(counts.values()) <= 45

    def test_deterministic(self):
        assert make_mixes(5, seed=1) == make_mixes(5, seed=1)
        assert make_mixes(5, seed=1) != make_mixes(5, seed=2)

    def test_build_workload_address_spaces_disjoint(self):
        wl = build_workload(EXAMPLE_MIX, 500, seed=0)
        spans = []
        for t in wl.traces:
            arr = np.array(t.addrs)
            spans.append((arr.min() >> 30, arr.max() >> 30))
        assert len({s[0] for s in spans}) == 8  # distinct high bits per core

    def test_duplicate_apps_not_in_lockstep(self):
        wl = build_workload(EXAMPLE_MIX, 500, seed=0)
        gcc1, gcc2 = wl.traces[0], wl.traces[7]
        assert gcc1.name == gcc2.name == "gcc"
        rel1 = [a & ((1 << 30) - 1) for a in gcc1.addrs]
        rel2 = [a & ((1 << 30) - 1) for a in gcc2.addrs]
        assert rel1 != rel2

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            build_workload(["not_spec"] * 8, 10)
