"""Smoke tests for the experiment drivers (tiny parameter sets).

These verify the drivers produce structurally correct results and render
without error; the benchmark harness runs them at meaningful scale.
"""

import pytest

from repro.experiments import (
    ExperimentParams,
    SpeedupStudy,
    format_bandwidth,
    format_fig1a,
    format_fig1b,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_table2,
    format_table3,
    format_table5,
    format_table6,
    matched_data_assoc,
    run_bandwidth,
    run_fig1a,
    run_fig1b,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table2,
    run_table3,
    run_table5,
    run_table6,
)
from repro.hierarchy.config import LLCSpec

TINY = ExperimentParams(n_workloads=2, n_refs=2500)


class TestParams:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "3")
        monkeypatch.setenv("REPRO_REFS", "1234")
        p = ExperimentParams.from_env()
        assert p.n_workloads == 3 and p.n_refs == 1234

    def test_workload_suite_shape(self):
        wls = TINY.workloads()
        assert len(wls) == 2
        assert all(wl.num_cores == 8 for wl in wls)


class TestSpeedupStudy:
    def test_baseline_speedup_is_one(self):
        study = SpeedupStudy(TINY)
        result = study.evaluate(LLCSpec.conventional(8, "lru"))
        for s in result.speedups:
            assert s == pytest.approx(1.0)

    def test_larger_cache_never_much_worse(self):
        study = SpeedupStudy(TINY)
        result = study.evaluate(LLCSpec.conventional(16, "lru"))
        assert result.mean_speedup > 0.95


class TestDrivers:
    def test_fig1a(self):
        r = run_fig1a(TINY, n_samples=10)
        assert set(r["averages"]) == {"lru", "drrip", "nrr"}
        assert all(0 <= v <= 1 for v in r["averages"].values())
        assert format_fig1a(r)

    def test_fig1b(self):
        r = run_fig1b(TINY, n_groups=20)
        assert len(r["group_share"]) == 20
        assert sum(r["group_share"]) == pytest.approx(1.0, abs=1e-6) or sum(
            r["group_share"]
        ) == 0
        # groups are sorted by hits: shares must be non-increasing
        shares = r["group_share"]
        assert all(a >= b - 1e-12 for a, b in zip(shares, shares[1:]))
        assert format_fig1b(r)

    def test_fig4_structure(self):
        r = run_fig4(ExperimentParams(n_workloads=1, n_refs=1500))
        assert set(r) == {4, 2, 1, 0.5}
        for per_assoc in r.values():
            assert set(per_assoc) == {"16", "32", "64", "128", "full"}
            assert all(v > 0 for v in per_assoc.values())
        assert format_fig4(r)

    def test_fig6(self):
        r = run_fig6(TINY)
        for d in r.values():
            assert d["n"] == 2
            assert d["min"] <= d["mean"] <= d["max"]
        assert format_fig6(r)

    def test_fig7(self):
        r = run_fig7(ExperimentParams(n_workloads=1, n_refs=1500))
        assert all(0 <= v <= 1 for v in r.values())
        assert "RC-4/1" in r
        assert format_fig7(r)

    def test_fig9_matched_geometry(self):
        assert matched_data_assoc(TINY, 8, 1) == 2
        assert matched_data_assoc(TINY, 8, 4) == 8
        r = run_fig9(ExperimentParams(n_workloads=1, n_refs=1500))
        for d in r.values():
            assert d["rc"] > 0 and d["ncid"] > 0
        assert format_fig9(r)

    def test_fig10(self):
        r = run_fig10(ExperimentParams(n_workloads=2, n_refs=1500))
        assert set(r) == {"RC-8/4", "RC-8/2", "RC-8/1"}
        for per_app in r.values():
            for d in per_app.values():
                lo, q1, med, q3, hi = d["quartiles"]
                assert lo <= q1 <= med <= q3 <= hi
        assert format_fig10(r)

    def test_fig11(self):
        r = run_fig11(ExperimentParams(n_workloads=1, n_refs=1500))
        assert set(r) == {"blackscholes", "canneal", "ferret", "fluidanimate", "ocean"}
        for d in r.values():
            assert set(d["speedups"]) == {"RC-8/4", "RC-8/2", "RC-4/1", "RC-4/0.5"}
        assert format_fig11(r)

    def test_bandwidth(self):
        r = run_bandwidth(ExperimentParams(n_workloads=1, n_refs=1500))
        for per_channels in r.values():
            assert per_channels[1] == pytest.approx(1.0)
            assert per_channels[4] >= per_channels[1] * 0.999
        assert format_bandwidth(r)

    def test_tables_2_and_3(self):
        assert "69888" in format_table2(run_table2()).replace(" ", "")
        assert format_table3(run_table3())

    def test_table5(self):
        r = run_table5(TINY)
        for d in r.values():
            assert d["l1"] >= d["l2"] >= 0
        assert format_table5(r)

    def test_table6(self):
        r = run_table6(ExperimentParams(n_workloads=1, n_refs=1500))
        assert r["conv-8MB-lru"]["avg"] == 0.0
        for label in ("RC-8/4", "RC-4/1"):
            assert 0.5 <= r[label]["avg"] <= 1.0
        assert format_table6(r)
