"""Tests for workload persistence."""

import numpy as np
import pytest

from repro.workloads import Trace, Workload, build_workload
from repro.workloads.mixes import EXAMPLE_MIX
from repro.workloads.trace_io import (
    load_dinero,
    load_workload,
    save_dinero,
    save_workload,
)


class TestRoundTrip:
    def test_generated_workload(self, tmp_path):
        wl = build_workload(EXAMPLE_MIX, 500, seed=9)
        path = save_workload(wl, tmp_path / "mix.npz")
        loaded = load_workload(path)
        assert loaded.name == wl.name
        assert loaded.app_names == wl.app_names
        for a, b in zip(wl.traces, loaded.traces):
            assert a.gaps == b.gaps
            assert a.addrs == b.addrs
            assert a.writes == b.writes

    def test_suffix_added(self, tmp_path):
        wl = Workload("w", [Trace("t", [0], [1], [0])])
        path = save_workload(wl, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert load_workload(path).traces[0].addrs == [1]

    def test_simulation_equivalence(self, tmp_path):
        """A loaded workload must simulate identically to the original."""
        from repro.hierarchy.config import LLCSpec, SystemConfig
        from repro.hierarchy.system import run_workload

        wl = build_workload(EXAMPLE_MIX, 800, seed=3)
        loaded = load_workload(save_workload(wl, tmp_path / "w.npz"))
        cfg = SystemConfig(llc=LLCSpec.reuse(4, 1))
        a = run_workload(cfg, wl)
        b = run_workload(cfg, loaded)
        assert a.cycles == b.cycles and a.instructions == b.instructions

    def test_version_check(self, tmp_path):
        wl = Workload("w", [Trace("t", [0], [1], [0])])
        path = save_workload(wl, tmp_path / "w.npz")
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez(tmp_path / "bad.npz", **data)
        with pytest.raises(ValueError, match="format version"):
            load_workload(tmp_path / "bad.npz")

    def test_large_addresses_preserved(self, tmp_path):
        big = (7 << 40) + 12345
        wl = Workload("w", [Trace("t", [3], [big], [1])])
        loaded = load_workload(save_workload(wl, tmp_path / "w.npz"))
        assert loaded.traces[0].addrs == [big]


class TestDinero:
    def test_round_trip_addresses_and_labels(self, tmp_path):
        trace = Trace("t", [2, 5, 0], [0x10, 0x20, 0x10], [0, 1, 0])
        path = save_dinero(trace, tmp_path / "t.din")
        loaded = load_dinero(path)
        assert loaded.addrs == trace.addrs
        assert loaded.writes == trace.writes

    def test_format_is_canonical_din(self, tmp_path):
        trace = Trace("t", [0], [0x10], [1])
        path = save_dinero(trace, tmp_path / "t.din")
        assert path.read_text() == "1 400\n"  # line 0x10 * 64 bytes

    def test_instruction_fetches_skipped(self, tmp_path):
        (tmp_path / "x.din").write_text("0 400\n2 800\n1 c00\n")
        loaded = load_dinero(tmp_path / "x.din")
        assert loaded.addrs == [0x10, 0x30]
        assert loaded.writes == [0, 1]

    def test_malformed_rejected(self, tmp_path):
        (tmp_path / "bad.din").write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            load_dinero(tmp_path / "bad.din")
        (tmp_path / "bad2.din").write_text("7 400\n")
        with pytest.raises(ValueError, match="unknown din label"):
            load_dinero(tmp_path / "bad2.din")

    def test_loaded_trace_simulates(self, tmp_path):
        from repro.hierarchy.config import SystemConfig
        from repro.hierarchy.system import run_workload

        traces = []
        for c in range(8):
            t = Trace(f"t{c}", [1] * 50,
                      [((c + 1) << 30) + i % 8 for i in range(50)], [0] * 50)
            path = save_dinero(t, tmp_path / f"t{c}.din")
            traces.append(load_dinero(path, name=f"t{c}"))
        result = run_workload(SystemConfig(), Workload("din", traces),
                              warmup_frac=0.0)
        assert result.performance > 0
