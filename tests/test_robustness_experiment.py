"""Tests for the scale-robustness study."""

from repro.experiments import ExperimentParams
from repro.experiments.robustness import (
    PROBE_SPECS,
    SCALES,
    format_robustness,
    run_robustness,
)


class TestRobustness:
    def test_structure(self):
        r = run_robustness(ExperimentParams(n_workloads=1, n_refs=1500))
        assert set(r) == set(SCALES)
        labels = {spec.label for spec in PROBE_SPECS}
        for per_scale in r.values():
            assert set(per_scale) == labels
            assert all(v > 0 for v in per_scale.values())

    def test_format_reports_stability(self):
        r = run_robustness(ExperimentParams(n_workloads=1, n_refs=1500))
        text = format_robustness(r)
        assert "ordering stability" in text
        for scale in SCALES:
            assert f"1/{scale}" in text
