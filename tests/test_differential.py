"""Differential testing: cache models vs tiny independent oracles.

The simulators are validated against purpose-built reference models written
with none of the production code's machinery (ordered dicts instead of tag
stores + policies), on randomized traces.  Divergence in *any* hit/miss
decision fails the test.
"""

import collections
import random

import pytest

from repro.cache.conventional import ConventionalLLC
from repro.cache.private_cache import PrivateCache
from repro.core.reuse_cache import ReuseCache


class OracleSetLRU:
    """Reference set-associative LRU cache built on OrderedDict."""

    def __init__(self, num_sets, assoc):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [collections.OrderedDict() for _ in range(num_sets)]

    def access(self, addr) -> bool:
        s = self.sets[addr % self.num_sets]
        if addr in s:
            s.move_to_end(addr)
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[addr] = True
        return False


class TestConventionalVsOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_single_core_lru_identical(self, seed):
        rng = random.Random(seed)
        llc = ConventionalLLC(32, 4, policy="lru", num_cores=1,
                              rng=random.Random(0))
        oracle = OracleSetLRU(8, 4)
        for t in range(3000):
            addr = rng.randrange(64)
            expected = oracle.access(addr)
            res = llc.access(addr, 0, False, t)
            got = res.source == "llc"
            assert got == expected, f"divergence at access {t} addr {addr}"
            # mirror the system: drop presence so NRR-free LRU matches
            llc.notify_private_eviction(addr, 0, False)

    def test_private_cache_vs_oracle(self):
        rng = random.Random(7)
        cache = PrivateCache(16, 4, "L1")
        oracle = OracleSetLRU(4, 4)
        for _ in range(3000):
            addr = rng.randrange(32)
            expected = oracle.access(addr)
            got = cache.lookup(addr) is not None
            if not got:
                cache.fill(addr, False)
            assert got == expected


class OracleReuseCache:
    """Reference reuse cache: FA data array with Clock, LRU-free tag model.

    Only the *data-array content* decision is mirrored (which lines get
    data, which hit); tags are unbounded so tag-eviction policy differences
    cannot mask data-path divergence.
    """

    def __init__(self, data_capacity):
        self.capacity = data_capacity
        self.seen = set()  # tags (unbounded)
        self.data = {}  # addr -> ref bit
        self.order = []  # clock order
        self.hand = 0

    def access(self, addr) -> str:
        if addr in self.data:
            self.data[addr] = 1
            return "hit"
        if addr in self.seen:
            # reuse: allocate
            if len(self.data) >= self.capacity:
                while True:
                    victim = self.order[self.hand]
                    if self.data[victim]:
                        self.data[victim] = 0
                        self.hand = (self.hand + 1) % len(self.order)
                    else:
                        del self.data[victim]
                        self.order[self.hand] = addr
                        self.hand = (self.hand + 1) % len(self.order)
                        break
            else:
                self.order.append(addr)
            self.data[addr] = 1
            return "reuse"
        self.seen.add(addr)
        return "miss"


class TestReuseCacheVsOracle:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_data_path_identical_with_unbounded_tags(self, seed):
        """With a tag array big enough never to evict, the reuse cache's
        data-array decisions must match the independent oracle exactly."""
        rng = random.Random(seed)
        n_lines = 32
        rc = ReuseCache(1024, 4, 8, data_assoc="full", num_cores=1,
                        rng=random.Random(0))
        oracle = OracleReuseCache(8)
        for t in range(4000):
            addr = rng.randrange(n_lines)
            expected = oracle.access(addr)
            res = rc.access(addr, 0, False, t)
            if expected == "hit":
                assert res.source == "llc", f"t={t} addr={addr}"
            elif expected == "reuse":
                assert res.source in ("dram", "peer") and rc.state_of(addr).has_data, (
                    f"t={t} addr={addr}"
                )
            else:
                assert res.source == "dram" and not rc.state_of(addr).has_data, (
                    f"t={t} addr={addr}"
                )
            rc.notify_private_eviction(addr, 0, False)
