"""Tests for the full TO-MOSI protocol table."""

import pytest

from repro.coherence.extended import (
    XProtocolError,
    XState,
    apply_extended,
    legal_events_extended,
    stable_states,
)
from repro.coherence.states import Event

DEMANDS = (Event.GETS, Event.GETX)


class TestStateStructure:
    def test_seven_stable_states(self):
        assert len(stable_states()) == 7

    def test_tag_only_group_has_three_states(self):
        """The paper: the reuse cache adds three tag-only stable states."""
        assert sum(1 for s in XState if s.tag_only) == 3

    def test_data_group(self):
        assert {s for s in XState if s.has_data} == {XState.S, XState.O, XState.M}

    def test_memory_staleness_flags(self):
        assert XState.O.memory_stale and XState.M.memory_stale
        assert XState.TM.memory_stale
        assert not XState.S.memory_stale and not XState.TS.memory_stale


class TestAllocationDiscipline:
    """Selective allocation: only reuse (a demand on a tag-only state)
    enters the data array."""

    def test_first_access_never_allocates_data(self):
        for event in DEMANDS:
            t = apply_extended(XState.I, event)
            assert t.next_state.tag_only
            assert not t.allocates_data

    def test_demand_on_tag_only_always_allocates(self):
        for state in (XState.TS, XState.TE, XState.TM):
            for event in DEMANDS:
                t = apply_extended(state, event)
                assert t.allocates_data
                assert t.next_state.has_data

    def test_no_other_transition_allocates(self):
        for (state, event) in [
            (s, e)
            for s in XState
            for e in Event
            if not (s.tag_only and e in DEMANDS)
        ]:
            try:
                t = apply_extended(state, event)
            except XProtocolError:
                continue
            assert not t.allocates_data, (state, event)


class TestDataConservation:
    """The newest copy of a line is never silently dropped."""

    def test_owner_states_write_back_on_removal(self):
        # O owns the newest data: dropping it must write memory back.
        assert apply_extended(XState.O, Event.DATA_REPL).writeback_to_memory
        assert apply_extended(XState.O, Event.TAG_REPL).writeback_to_memory
        # TM's owner is flushed by the back-invalidation on TagRepl.
        assert apply_extended(XState.TM, Event.TAG_REPL).writeback_to_memory

    def test_m_data_repl_keeps_owner(self):
        """In M the private owner holds the newest copy, so the stale
        data-array copy may be dropped without a writeback."""
        t = apply_extended(XState.M, Event.DATA_REPL)
        assert t.next_state is XState.TM
        assert not t.writeback_to_memory

    def test_putx_routing(self):
        # tag-only PUTX forwards to memory; tag+data PUTX is absorbed
        for state in (XState.TE, XState.TM):
            assert apply_extended(state, Event.PUTX).writeback_to_memory
        for state in (XState.S, XState.O, XState.M):
            t = apply_extended(state, Event.PUTX)
            assert t.writeback_to_data_array and not t.writeback_to_memory

    def test_stale_memory_never_becomes_trusted_silently(self):
        """From a memory-stale state, no transition reaches a memory-clean
        state without a writeback or a remaining owner."""
        for state in (s for s in XState if s.memory_stale):
            for event in Event:
                try:
                    t = apply_extended(state, event)
                except XProtocolError:
                    continue
                if not t.next_state.memory_stale and t.next_state is not XState.I:
                    assert t.writeback_to_memory or t.writeback_to_data_array, (
                        state,
                        event,
                    )


class TestGroupTransitions:
    def test_data_repl_always_lands_tag_only(self):
        for state in (XState.S, XState.O, XState.M):
            t = apply_extended(state, Event.DATA_REPL)
            assert t.next_state.tag_only and t.deallocates_data

    def test_tag_repl_always_invalid(self):
        for state in XState:
            if state is XState.I:
                continue
            assert apply_extended(state, Event.TAG_REPL).next_state is XState.I

    def test_reuse_from_dirty_owner_creates_ownership(self):
        t = apply_extended(XState.TM, Event.GETS)
        assert t.next_state is XState.O
        assert t.owner_supplies_data

    def test_upgrade_takes_tag_only_ownership(self):
        assert apply_extended(XState.TS, Event.UPG).next_state is XState.TM
        assert apply_extended(XState.TE, Event.UPG).next_state is XState.TM

    def test_illegal_events(self):
        with pytest.raises(XProtocolError):
            apply_extended(XState.I, Event.PUTS)
        with pytest.raises(XProtocolError):
            apply_extended(XState.TM, Event.UPG)  # only the owner holds it
        with pytest.raises(XProtocolError):
            apply_extended(XState.M, Event.UPG)
        with pytest.raises(XProtocolError):
            apply_extended(XState.TS, Event.DATA_REPL)

    def test_simplified_table_is_an_abstraction(self):
        """Collapsing {TS,TE}->TO reproduces the published simplified TO-MSI
        table for the shared events, on the memory-clean states (MSI cannot
        express dirty-owner reuse, which is exactly why the full protocol
        needs TM and O)."""
        from repro.coherence.protocol import apply as apply_simple
        from repro.coherence.states import State

        collapse = {
            XState.I: State.I,
            XState.S: State.S,
            XState.O: State.M,
            XState.M: State.M,
            XState.TS: State.TO,
            XState.TE: State.TO,
            XState.TM: State.TO,
        }
        for xstate in (XState.I, XState.S, XState.TS, XState.TE):
            for event in (Event.GETS, Event.GETX, Event.DATA_REPL, Event.TAG_REPL):
                try:
                    xt = apply_extended(xstate, event)
                except XProtocolError:
                    continue
                try:
                    st = apply_simple(collapse[xstate], event)
                except Exception:
                    continue
                assert collapse[xt.next_state] == st.next_state, (xstate, event)
                assert xt.allocates_data == st.allocates_data, (xstate, event)

    def test_every_state_handles_demands(self):
        for state in XState:
            events = legal_events_extended(state)
            assert Event.GETS in events and Event.GETX in events
