"""Property-based tests for the DDR3 timing model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import DDR3Config, DDR3Memory

requests = st.lists(
    st.tuples(
        st.integers(0, 1 << 16),  # line address
        st.integers(0, 50),  # time delta since previous request
        st.booleans(),  # write?
    ),
    max_size=200,
)


@settings(max_examples=40, deadline=None)
@given(reqs=requests, channels=st.sampled_from([1, 2, 4]),
       policy=st.sampled_from(["open", "closed"]))
def test_reads_complete_after_issue_with_bounded_latency(reqs, channels, policy):
    """Every read completes at least raw-latency-ish after issue and within
    issue + raw + total-backlog bounds; time never runs backwards."""
    mem = DDR3Memory(DDR3Config(channels=channels, page_policy=policy))
    cfg = mem.config
    now = 0
    backlog = 0
    for addr, dt, is_write in reqs:
        now += dt
        if is_write:
            mem.write(addr, now)
            backlog += cfg.raw_latency
        else:
            done = mem.read(addr, now)
            assert done >= now + cfg.row_hit_latency
            assert done <= now + cfg.raw_latency + backlog + cfg.bus_cycles * 200
            backlog += cfg.raw_latency


@settings(max_examples=40, deadline=None)
@given(reqs=requests)
def test_per_bank_service_is_serialised(reqs):
    """Two back-to-back reads to the same bank never overlap in service."""
    mem = DDR3Memory()
    last_done = {}
    now = 0
    for addr, dt, _ in reqs:
        now += dt
        _, bank, _ = mem._locate(addr)
        done = mem.read(addr, now)
        if bank in last_done:
            # the bank can't finish a later request earlier than an earlier one
            assert done >= last_done[bank] - mem.config.bus_cycles
        last_done[bank] = done


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 64))
def test_more_channels_drain_bursts_faster(n):
    """For a burst of page-disjoint reads issued together, more channels
    never increase the drain time.  (Per-request latency is *not* always
    better with more channels — interleaving can split row locality — so
    the guarantee is about parallel drain, which is what Section 5.8
    measures.)"""
    one = DDR3Memory(DDR3Config(channels=1))
    four = DDR3Memory(DDR3Config(channels=4))
    page = one.config.page_lines
    addrs = [i * page * 4 for i in range(n)]  # distinct pages, all channels
    drain_one = max(one.read(a, 0) for a in addrs)
    drain_four = max(four.read(a, 0) for a in addrs)
    assert drain_four <= drain_one
