"""Reproduction contract: the paper's headline claims hold in simulation.

These are coarse, deliberately generous bounds — they are meant to catch a
regression that silently breaks the reproduction (e.g. a workload or
simulator change that flips a conclusion), not to re-assert exact numbers
(EXPERIMENTS.md tracks those).
"""

import pytest

from repro.experiments.common import ExperimentParams, SpeedupStudy
from repro.hierarchy.config import LLCSpec


@pytest.fixture(scope="module")
def study():
    # long enough that the reuse cache's detection warm-up has paid off
    return SpeedupStudy(ExperimentParams(n_workloads=3, n_refs=15000))


class TestHeadlineClaims:
    def test_cache_capacity_matters(self, study):
        """Sanity: a 4 MB conventional cache loses, a 16 MB one wins."""
        assert study.evaluate(LLCSpec.conventional(4)).mean_speedup < 0.97
        assert study.evaluate(LLCSpec.conventional(16)).mean_speedup > 1.02

    def test_rc41_matches_the_8mb_baseline(self, study):
        """The paper's headline: RC-4/1 performs at least as well as the
        conventional 8 MB cache at 16.7% of its storage."""
        assert study.evaluate(LLCSpec.reuse(4, 1)).mean_speedup >= 0.97

    def test_data_array_can_shrink_4x_without_loss(self, study):
        """RC-8/2 (a quarter of the data) at least matches the baseline."""
        assert study.evaluate(LLCSpec.reuse(8, 2)).mean_speedup >= 1.0

    def test_selectivity_is_high(self, study):
        """The reuse cache discards the vast majority of lines (Table 6)."""
        result = study.evaluate(LLCSpec.reuse(4, 1))
        for run in result.runs:
            assert run.llc_stats["fraction_not_entered"] > 0.75

    def test_reuse_cache_beats_ncid_at_equal_data(self, study):
        """Figure 9's conclusion."""
        rc = study.evaluate(LLCSpec.reuse(8, 1, data_assoc=2)).mean_speedup
        ncid = study.evaluate(LLCSpec.ncid(8, 1)).mean_speedup
        assert rc > ncid

    def test_reuse_data_array_is_more_alive(self):
        """Figure 7's conclusion: the RC data array holds far more live
        lines than the conventional baseline."""
        study = SpeedupStudy(
            ExperimentParams(n_workloads=2, n_refs=8000), record_generations=True
        )
        base_live = sum(
            run.generations.mean_live_fraction() for run in study.baseline_runs
        ) / len(study.baseline_runs)
        rc_runs = study.evaluate(LLCSpec.reuse(4, 1)).runs
        rc_live = sum(r.generations.mean_live_fraction() for r in rc_runs) / len(rc_runs)
        assert rc_live > 2 * base_live
