"""Tests for the Table 2 / Figure 8 hardware-cost model.

These check the *exact* numbers of paper Table 2 — this model is analytic,
so the reproduction must be bit-for-bit.
"""

import pytest

from repro.core.cost_model import (
    conventional_cost,
    figure8_storage_kbits,
    reuse_cache_cost,
    table2,
    tag_bits,
    ways_per_kbit_summary,
)


class TestTable2Exact:
    """Paper Table 2, column by column."""

    def test_conventional_8mb(self):
        c = conventional_cost(8)
        assert c.fields["tag"] == 21
        assert c.tag_entry_bits == 34
        assert c.data_entry_bits == 512
        assert c.total_kbits == 69888

    def test_rc41_fully_associative(self):
        c = reuse_cache_cost(4, 1, data_assoc="full")
        assert c.fields["tag.tag"] == 22
        assert c.fields["tag.fwd_pointer"] == 14
        assert c.fields["data.rev_pointer"] == 16
        assert c.tag_entry_bits == 50
        assert c.data_entry_bits == 530
        assert c.total_kbits == 11680

    def test_rc41_16way(self):
        c = reuse_cache_cost(4, 1, data_assoc=16)
        assert c.fields["tag.fwd_pointer"] == 4
        assert c.fields["data.rev_pointer"] == 6
        assert c.tag_entry_bits == 40
        assert c.data_entry_bits == 520
        assert c.total_kbits == 10880

    def test_reductions(self):
        t = table2()
        conv = t["conv-8MB"]
        assert t["RC-4/1-FA"].reduction_vs(conv) == pytest.approx(0.833, abs=0.001)
        assert t["RC-4/1-16w"].reduction_vs(conv) == pytest.approx(0.844, abs=0.001)

    def test_paper_headline_storage_ratio(self):
        """RC-4/1 needs only ~16.7% of the conventional 8 MB storage."""
        conv = conventional_cost(8)
        rc = reuse_cache_cost(4, 1, data_assoc="full")
        assert rc.total_kbits / conv.total_kbits == pytest.approx(0.167, abs=0.001)


class TestModelStructure:
    def test_tag_bits_shrink_with_sets(self):
        assert tag_bits(8192) == 21
        assert tag_bits(4096) == 22

    def test_fully_associative_pointers_are_widest(self):
        fa = reuse_cache_cost(8, 2, data_assoc="full")
        sa = reuse_cache_cost(8, 2, data_assoc=16)
        assert fa.fields["tag.fwd_pointer"] > sa.fields["tag.fwd_pointer"]
        assert fa.fields["data.rev_pointer"] > sa.fields["data.rev_pointer"]

    def test_set_associative_cheaper_than_fa(self):
        # paper: the 16-way organisation needs ~6.8% fewer bits than FA
        fa = reuse_cache_cost(4, 1, data_assoc="full")
        sa = reuse_cache_cost(4, 1, data_assoc=16)
        assert 1 - sa.total_kbits / fa.total_kbits == pytest.approx(0.068, abs=0.005)

    def test_rejects_nonsense_capacity(self):
        with pytest.raises(ValueError):
            conventional_cost(0)

    def test_summary_rendering(self):
        text = ways_per_kbit_summary(conventional_cost(8))
        assert "69888" in text.replace(" ", "")


class TestFigure8Storage:
    def test_all_labels_present(self):
        s = figure8_storage_kbits()
        for label in ("RC-16/8", "RC-8/4", "RC-8/2", "RC-4/1", "RC-4/0.5",
                      "conv-8MB", "conv-8MB-drrip", "conv-16MB"):
            assert label in s

    def test_drrip_costs_one_extra_bit_per_line(self):
        s = figure8_storage_kbits()
        assert s["conv-8MB-drrip"] - s["conv-8MB"] == pytest.approx(128)

    def test_paper_cost_orderings(self):
        """The cost relations Fig. 8 argues from."""
        s = figure8_storage_kbits()
        # RC-16/8 saves ~41% vs conv 16 MB DRRIP
        assert 1 - s["RC-16/8"] / s["conv-16MB-drrip"] == pytest.approx(0.42, abs=0.02)
        # RC-8/4 saves ~48% vs conv 8 MB DRRIP
        assert 1 - s["RC-8/4"] / s["conv-8MB-drrip"] == pytest.approx(0.42, abs=0.08)
        # RC-4/0.5 saves ~80% vs conv 4 MB DRRIP
        assert 1 - s["RC-4/0.5"] / s["conv-4MB-drrip"] == pytest.approx(0.79, abs=0.02)

    def test_conv_8mb_drrip_matches_paper(self):
        assert figure8_storage_kbits()["conv-8MB-drrip"] == pytest.approx(70016)
