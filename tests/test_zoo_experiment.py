"""Tests for the replacement-zoo extension study."""

from repro.experiments import ExperimentParams
from repro.experiments.zoo import RC_REFERENCES, ZOO_POLICIES, format_zoo, run_zoo


class TestZoo:
    def test_structure(self):
        r = run_zoo(ExperimentParams(n_workloads=1, n_refs=1500))
        for policy in ZOO_POLICIES:
            assert f"conv-8MB-{policy}" in r
        for spec in RC_REFERENCES:
            assert spec.label in r
        assert all(v > 0 for v in r.values())

    def test_baseline_is_unity(self):
        r = run_zoo(ExperimentParams(n_workloads=1, n_refs=1500))
        assert abs(r["conv-8MB-lru"] - 1.0) < 1e-9

    def test_format_sorted_by_speedup(self):
        r = {"bbb": 2.0, "aaa": 1.0, "ccc": 1.5}
        lines = format_zoo(r).splitlines()
        order = [ln.split()[0] for ln in lines
                 if ln.split() and ln.split()[0] in ("aaa", "bbb", "ccc")]
        assert order == ["aaa", "ccc", "bbb"]

    def test_covers_related_work_lineage(self):
        """The zoo spans the paper's Section 6 lineage: commercial baseline
        (NRU), insertion policies (DIP), RRIP family, disk-cache ancestry
        (SLRU), predictors (SHiP), and both decoupled designs."""
        assert {"nru", "dip", "srrip", "drrip", "slru", "ship", "nrr"} <= set(
            ZOO_POLICIES
        )
        assert any(s.kind == "vway" for s in RC_REFERENCES)
