#!/usr/bin/env python
"""Extend the library: plug a custom replacement policy into the reuse cache.

The paper notes (Section 6) that NRR is not sacred — any policy that
identifies soon-to-be-referenced lines can govern the tag or data array.
This example registers a custom tag policy (a signature-less SHiP flavour:
protect lines by a small saturating reuse counter instead of NRR's single
bit), selects it through ``LLCSpec.reuse(tag_policy=...)`` and compares it
against stock NRR on one workload.
"""

from repro import EXAMPLE_MIX, LLCSpec, SystemConfig, build_workload, run_workload
from repro.replacement import POLICIES, ReplacementPolicy


class ReuseCounterPolicy(ReplacementPolicy):
    """Protect lines by a 2-bit reuse counter (a SHiP-like confidence)."""

    name = "reuse2bit"

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        self._count = [[0] * assoc for _ in range(num_sets)]

    def on_fill(self, set_idx, way, thread=0):
        self._count[set_idx][way] = 0

    def on_hit(self, set_idx, way, thread=0):
        counters = self._count[set_idx]
        if counters[way] < 3:
            counters[way] += 1

    def on_invalidate(self, set_idx, way):
        self._count[set_idx][way] = 0

    def victim(self, set_idx, candidates):
        self._check_candidates(candidates)
        counters = self._count[set_idx]
        lowest = min(counters[w] for w in candidates)
        pool = [w for w in candidates if counters[w] == lowest]
        # age the rest so stale confidence decays
        for w in range(self.assoc):
            if counters[w] > 0:
                counters[w] -= 1
        return pool[0] if len(pool) == 1 else self.rng.choice(pool)


def main() -> None:
    # Register the policy; every LLCSpec resolves names through this table.
    POLICIES[ReuseCounterPolicy.name] = ReuseCounterPolicy

    workload = build_workload(EXAMPLE_MIX, n_refs=25_000, seed=5)
    base = run_workload(SystemConfig(llc=LLCSpec.conventional(8, "lru")), workload)

    print("RC-4/1 speedup over the 8 MB LRU baseline:")
    for tag_policy in ("nrr", "reuse2bit"):
        spec = LLCSpec.reuse(4, 1, tag_policy=tag_policy)
        run = run_workload(SystemConfig(llc=spec), workload)
        print(f"  tag policy {tag_policy:<10}: {run.performance / base.performance:.3f}")


if __name__ == "__main__":
    main()
