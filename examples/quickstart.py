#!/usr/bin/env python
"""Quickstart: compare a reuse cache against the conventional baseline.

Builds one multiprogrammed 8-application workload, runs it on the paper's
baseline (conventional 8 MB LRU SLLC) and on the headline reuse cache
RC-4/1 (4 MBeq tag array, 1 MB data array — 16.7 % of the baseline's
storage), and reports speedup and cache behaviour.
"""

from repro import (
    EXAMPLE_MIX,
    LLCSpec,
    SystemConfig,
    build_workload,
    conventional_cost,
    reuse_cache_cost,
    run_workload,
)


def main() -> None:
    # The paper's example workload: gcc, mcf, povray, leslie3d, h264ref,
    # lbm, namd, gcc (Section 2, footnote 1).
    workload = build_workload(EXAMPLE_MIX, n_refs=30_000, seed=7)

    baseline_cfg = SystemConfig(llc=LLCSpec.conventional(8, "lru"))
    reuse_cfg = SystemConfig(llc=LLCSpec.reuse(4, 1))

    print(f"workload: {workload.name}")
    print("running conventional 8 MB LRU baseline ...")
    base = run_workload(baseline_cfg, workload)
    print("running reuse cache RC-4/1 ...")
    rc = run_workload(reuse_cfg, workload)

    speedup = rc.performance / base.performance
    print()
    print(f"baseline aggregate IPC : {base.performance:.3f}")
    print(f"RC-4/1 aggregate IPC   : {rc.performance:.3f}")
    print(f"speedup                : {speedup:.3f}")

    stats = rc.llc_stats
    print()
    print("reuse cache behaviour:")
    print(f"  tag fills (lines seen)        : {stats['tag_fills']}")
    print(f"  data fills (lines kept)       : {stats['data_fills']}")
    print(f"  lines never entered data array: {stats['fraction_not_entered']:.1%}")
    print(f"  reuse detections (TO hits)    : {stats['to_hits']}")
    print(f"  second memory fetches         : {stats['reuse_reloads']}")

    conv_bits = conventional_cost(8).total_kbits
    rc_bits = reuse_cache_cost(4, 1).total_kbits
    print()
    print(f"storage: {rc_bits:.0f} Kbits vs {conv_bits:.0f} Kbits "
          f"({rc_bits / conv_bits:.1%} of the baseline)")


if __name__ == "__main__":
    main()
