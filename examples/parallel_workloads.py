#!/usr/bin/env python
"""Parallel applications on the reuse cache (paper Section 5.7).

Runs the five PARSEC/SPLASH-2-like multithreaded workloads on the baseline
and on reuse caches with shrinking data arrays, reporting per-application
speedups — the paper's Figure 11 scenario, where shared-line reuse keeps
even a 512 KB data array competitive for four of the five applications.
"""

from repro import LLCSpec, PARALLEL_APPS, SystemConfig, generate_parallel_workload, run_workload

SPECS = [LLCSpec.reuse(8, 4), LLCSpec.reuse(8, 2), LLCSpec.reuse(4, 1), LLCSpec.reuse(4, 0.5)]


def main() -> None:
    baseline = SystemConfig(llc=LLCSpec.conventional(8, "lru"))
    header = f"{'app':<14}{'LLC MPKI':>9}" + "".join(f"{s.label:>10}" for s in SPECS)
    print(header)
    print("-" * len(header))
    for app in PARALLEL_APPS:
        workload = generate_parallel_workload(app, n_refs=20_000, seed=11)
        base = run_workload(baseline, workload)
        mpki = sum(base.llc_mpki) / len(base.llc_mpki)
        row = f"{app:<14}{mpki:>9.1f}"
        for spec in SPECS:
            run = run_workload(SystemConfig(llc=spec), workload)
            row += f"{run.performance / base.performance:>10.3f}"
        print(row)
    print("\n(paper: only ferret loses, by 1-11%; canneal and ocean gain >10%)")


if __name__ == "__main__":
    main()
