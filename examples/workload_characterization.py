#!/usr/bin/env python
"""Characterise a workload's reuse structure before simulating it.

Uses exact LRU stack distances (Bennett–Kruskal) to show where each
application's reuse lands in the hierarchy — the property that decides
whether the reuse cache helps it.  Applications whose reuse band sits
between the private L2 and the SLLC benefit; pure streamers and
L1-resident codes are indifferent.
"""

from repro import SPEC_PROFILES, generate_trace
from repro.workloads.analysis import hit_ratio_curve, stack_distances

SCALE = 32
L1_LINES, L2_LINES, LLC_SHARE = 16, 128, 512  # scaled per-core capacities

APPS = ["namd", "gcc", "mcf", "libquantum", "omnetpp"]


def main() -> None:
    print(f"{'app':<12}{'hot<L1':>8}{'L1..L2':>8}{'L2..LLC':>9}{'>LLC':>7}"
          f"{'cold':>7}   FA-LRU hit ratio @ L2 / LLC-share")
    for app in APPS:
        trace = generate_trace(SPEC_PROFILES[app], 30_000, seed=4, scale=SCALE)
        d = stack_distances(trace.addrs)
        n = len(d)
        cold = (d < 0).sum()
        warm = d[d >= 0]
        bands = [
            (warm < L1_LINES).sum(),
            ((warm >= L1_LINES) & (warm < L2_LINES)).sum(),
            ((warm >= L2_LINES) & (warm < LLC_SHARE)).sum(),
            (warm >= LLC_SHARE).sum(),
        ]
        curve = hit_ratio_curve(trace.addrs, [L2_LINES, LLC_SHARE])
        print(
            f"{app:<12}"
            + "".join(f"{b / n:>8.1%}" for b in bands[:1])
            + "".join(f"{b / n:>8.1%}" for b in bands[1:2])
            + f"{bands[2] / n:>9.1%}{bands[3] / n:>7.1%}{cold / n:>7.1%}"
            + f"   {curve[L2_LINES]:.1%} / {curve[LLC_SHARE]:.1%}"
        )
    print()
    print("reading: 'L2..LLC' is the SLLC-reuse band the reuse cache harvests;")
    print("'>LLC' + 'cold' are the dead-on-arrival lines it refuses to store.")

    # zoom into one application's distance histogram
    app = "omnetpp"
    trace = generate_trace(SPEC_PROFILES[app], 30_000, seed=4, scale=SCALE)
    d = stack_distances(trace.addrs)
    warm = d[d >= 0]
    print(f"\n{app} stack-distance histogram (log2 bins):")
    for k in range(0, 13, 2):
        lo, hi = 1 << k, 1 << (k + 2)
        frac = ((warm >= lo) & (warm < hi)).sum() / max(1, len(warm))
        print(f"  [{lo:>5}, {hi:>5})  {'#' * int(60 * frac)} {frac:.1%}")


if __name__ == "__main__":
    main()
