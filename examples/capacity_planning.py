#!/usr/bin/env python
"""Capacity planning: how small can the SLLC get without losing performance?

This is the paper's headline use case ("downsizing"): sweep reuse-cache
configurations against conventional caches of 4/8/16 MB and report, for each
conventional design point, the cheapest reuse cache that matches it within a
tolerance — together with the storage savings from the exact Table 2 cost
model.
"""

from repro import LLCSpec, SystemConfig, build_mix_suite, conventional_cost, reuse_cache_cost, run_workload

TOLERANCE = 0.01  # match within 1%

RC_CANDIDATES = [
    (2, 0.5), (4, 0.5), (4, 1), (8, 1), (8, 2), (8, 4), (16, 8),
]
CONV_TARGETS = [4, 8, 16]


def mean_performance(spec: LLCSpec, workloads) -> float:
    total = 0.0
    for wl in workloads:
        total += run_workload(SystemConfig(llc=spec), wl).performance
    return total / len(workloads)


def storage_kbits(spec: LLCSpec) -> float:
    if spec.kind == "conventional":
        return conventional_cost(spec.size_mb).total_kbits
    return reuse_cache_cost(spec.tag_mbeq, spec.data_mb).total_kbits


def main() -> None:
    workloads = build_mix_suite(n_mixes=4, n_refs=20_000)
    print(f"evaluating over {len(workloads)} workloads ...")

    rc_perf = {}
    for tag, data in RC_CANDIDATES:
        spec = LLCSpec.reuse(tag, data)
        rc_perf[spec.label] = (spec, mean_performance(spec, workloads))
        print(f"  {spec.label:<10} perf {rc_perf[spec.label][1]:.3f}")

    for size in CONV_TARGETS:
        conv = LLCSpec.conventional(size, "lru")
        target = mean_performance(conv, workloads)
        conv_bits = storage_kbits(conv)
        print(f"\nconventional {size} MB LRU: perf {target:.3f}, "
              f"{conv_bits:.0f} Kbits")
        matches = [
            (label, spec, perf)
            for label, (spec, perf) in rc_perf.items()
            if perf >= target * (1 - TOLERANCE)
        ]
        if not matches:
            print("  no reuse cache candidate matches — add larger candidates")
            continue
        label, spec, perf = min(matches, key=lambda m: storage_kbits(m[1]))
        bits = storage_kbits(spec)
        print(f"  cheapest match: {label} (perf {perf:.3f}), "
              f"{bits:.0f} Kbits = {bits / conv_bits:.1%} of the storage "
              f"({1 - bits / conv_bits:.0%} saved)")


if __name__ == "__main__":
    main()
