#!/usr/bin/env python
"""Serving mode end-to-end: server + client + load generator in one process.

Starts a sharded reuse-admission cache server on an ephemeral port, walks
one key through the paper's admission state machine with a pooled client
(first touch tags, second touch admits), then replays a synthetic workload
through the load generator and prints the per-shard STATS the server
exposes — the serving-stack face of the reuse cache's selective allocation.

Run from the repo root::

    PYTHONPATH=src python examples/service_demo.py
"""

import asyncio

from repro.service import CacheClient, CacheServer, ShardedStore, run_load
from repro.workloads.mixes import build_workload


async def admission_walkthrough(client: CacheClient) -> None:
    """One key through I -> TO -> S, narrated."""
    key, value = "user:42", b"profile-bytes"
    print(f"GET {key}:      miss={await client.get(key) is None}   (first touch: tag only)")
    print(f"SET {key}:    stored={await client.set(key, value)}  (declined: no reuse yet)")
    print(f"GET {key}:      miss={await client.get(key) is None}   (second touch: reuse detected)")
    print(f"SET {key}:    stored={await client.set(key, value)}   (admitted to the data store)")
    hit = await client.get(key)
    print(f"GET {key}:       hit={hit == value}   (served from the data store)")


async def main() -> None:
    store = ShardedStore(num_shards=4, data_capacity=512, admission="reuse")
    server = CacheServer(store, port=0)  # ephemeral port
    await server.start()
    print(f"server: 4 shards x {store.data_capacity // 4} entries "
          f"on 127.0.0.1:{server.port}\n")

    async with CacheClient("127.0.0.1", server.port) as client:
        await admission_walkthrough(client)

        print("\nreplaying a 2-core synthetic workload as GET/SET traffic ...")
        workload = build_workload(["gcc", "mcf"], n_refs=5_000, seed=7)
        result = await run_load("127.0.0.1", server.port, workload)
        print(f"  {result.ops} requests in {result.wall_s:.2f}s "
              f"({result.throughput:.0f} rps)")
        print(f"  hit rate {result.hit_rate:.3f}, "
              f"stored {result.sets_stored}, declined {result.sets_tagged}")

        stats = await client.stats()
        print("\nper-shard STATS:")
        for i, shard in enumerate(stats["shards"]):
            print(f"  shard {i}: hits={shard['hits']:<6} "
                  f"misses={shard['misses']:<6} "
                  f"admitted={shard['reuse_admissions']:<5} "
                  f"evicted={shard['data_evictions']:<5} "
                  f"p99={shard['p99_s'] * 1e3:.2f}ms")
        total = stats["total"]
        print(f"  total:   hit_rate={total['hit_rate']:.3f} "
              f"bytes_stored={total['bytes_stored']}")

    await server.stop()
    print("\nserver drained and stopped")


if __name__ == "__main__":
    asyncio.run(main())
