#!/usr/bin/env python
"""Reproduce the paper's Section 2 motivation study on any workload.

Records per-generation SLLC contents for the conventional baseline and
prints the two observations that motivate the reuse cache:

1. the fraction of *live* lines (lines that will still be hit) is small and
   varies over time (Fig. 1a);
2. hits concentrate in a tiny fraction of the loaded lines (Fig. 1b).
"""

from repro import EXAMPLE_MIX, LLCSpec, SystemConfig, build_workload, run_workload


def sparkline(values, width=60) -> str:
    blocks = " .:-=+*#%@"
    if not len(values):
        return ""
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    peak = max(sampled) or 1.0
    return "".join(blocks[min(9, int(9 * v / peak))] for v in sampled)


def main() -> None:
    workload = build_workload(EXAMPLE_MIX, n_refs=40_000, seed=3)
    config = SystemConfig(llc=LLCSpec.conventional(8, "lru"))
    print(f"running {workload.name} on the 8 MB LRU baseline ...")
    result = run_workload(config, workload, record_generations=True)
    log = result.generations

    interval = max(1, (log.end_time - log.start_time) // 80)
    _, fracs = log.live_fraction_series(interval)
    print()
    print("live-line fraction over time (Fig. 1a):")
    print(f"  {sparkline(list(fracs))}")
    print(f"  min {fracs.min():.1%}  mean {fracs.mean():.1%}  max {fracs.max():.1%}"
          f"   (paper: 5.7% .. 29.8%, average 17.4%)")

    share, avg_hits = log.hit_distribution(n_groups=200)
    print()
    print("hit concentration (Fig. 1b):")
    print(f"  top 0.5% of loaded lines take {share[0]:.0%} of all hits "
          f"(avg {avg_hits[0]:.1f} hits/line)    [paper: 47%, 11.5]")
    useful = log.useful_fraction()
    print(f"  useful lines (>=1 hit): {useful:.1%} of {log.n_generations} "
          f"generations                 [paper: ~5%]")
    print()
    print("conclusion: most of the data array stores dead lines -> store only")
    print("reused lines and shrink it (the reuse cache).")


if __name__ == "__main__":
    main()
